"""The .net format: parsing, diagnostics, round-tripping."""

import pytest

from repro.circuit.parser import netlist_to_text, parse_netlist
from repro.errors import ParseError

GOOD = """
# comment
.model demo
.inputs A B
.gate a BUF A
.gate b BUF B
.gate c CELEM a b
.expr d = (a & ~b) | c
.outputs c d
.reset A=0 B=0 a=0 b=0 c=0 d=0
.k 12
.end
"""


def test_parse_good():
    c = parse_netlist(GOOD)
    assert c.name == "demo"
    assert c.n_inputs == 2
    assert c.n_gates == 4
    assert c.output_names == ("c", "d")
    assert c.k == 12
    assert c.reset_state == 0


def test_comments_and_blank_lines_ignored():
    c = parse_netlist("\n# hi\n.inputs A\n.gate g BUF A\n")
    assert c.n_gates == 1


@pytest.mark.parametrize(
    "line,message",
    [
        (".model a b", "one name"),
        (".gate g", "expects OUT"),
        (".expr g a & b", "OUT = EXPR"),
        (".reset A", "assignment"),
        (".reset A=2", "0/1"),
        (".k x", "integer"),
        (".frobnicate", "unknown directive"),
    ],
)
def test_directive_errors(line, message):
    with pytest.raises(ParseError, match=message):
        parse_netlist(f".inputs A\n{line}\n.gate g BUF A\n")


def test_error_reports_line_number():
    with pytest.raises(ParseError) as excinfo:
        parse_netlist(".inputs A\n.gate g FROB A\n", filename="x.net")
    assert excinfo.value.line == 2
    assert excinfo.value.filename == "x.net"


def test_end_stops_parsing():
    c = parse_netlist(".inputs A\n.gate g BUF A\n.end\n.garbage\n")
    assert c.n_gates == 1


def test_roundtrip_preserves_behaviour():
    c1 = parse_netlist(GOOD)
    text = netlist_to_text(c1)
    c2 = parse_netlist(text)
    assert c2.n_signals == c1.n_signals
    assert c2.output_names == c1.output_names
    assert c2.reset_state == c1.reset_state
    assert c2.k == c1.k
    # Behavioural equivalence: identical gate evaluation on every state.
    for state in range(1 << c1.n_signals):
        for g1, g2 in zip(c1.gates, c2.gates):
            assert g1.name == g2.name
            assert c1.gate_eval(g1, state) == c2.gate_eval(g2, state)


def test_roundtrip_keeps_library_gate_lines():
    text = netlist_to_text(parse_netlist(GOOD))
    assert ".gate a BUF A" in text
    assert ".gate c CELEM a b" in text
