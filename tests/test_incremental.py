"""Incremental re-ATPG: cohort keying, invalidation, merge identity.

The heart of the suite is golden-digest identity (like
``test_faultmodels_diff.py``): on every Table-1 benchmark and both
stuck-at models, a cold incremental run and a warm pure-merge rerun
must produce payloads byte-identical (modulo ``cpu_seconds`` /
``schema_version``) to the recorded from-scratch behaviour.  Around
that, targeted invalidation tests pin the cohort-key contract: a
renamed signal or widened cone invalidates exactly the cohorts whose
cones see it, an option or fault-model change invalidates everything,
and an out-of-cone edit leaves keys untouched.
"""

import hashlib
import json
import time
from pathlib import Path

import pytest

from repro.benchmarks_data import TABLE1_NAMES
from repro.campaign.cohort import (
    COHORT_SCHEMA_VERSION,
    cohort_salt,
    cssg_fingerprint,
    partition,
    validate_partial,
)
from repro.campaign.plan import CampaignSpec, cohort_plan, expand
from repro.campaign.runner import execute_job_incremental
from repro.campaign.store import ResultStore
from repro.circuit.faults import fault_universe
from repro.circuit.parser import parse_netlist
from repro.core.atpg import AtpgOptions

GOLDEN_PATH = (
    Path(__file__).resolve().parent / "data" / "golden_stuckat_digests.json"
)

#: Two independent buffer chains: a -> u -> v and b -> w -> x.  Faults
#: in one chain have cones disjoint from the other, so chain-local
#: edits must leave the other chain's cohort keys untouched.
PAIR_NET = """
.model pair
.inputs a b
.gate u BUF a
.gate v BUF u
.gate w BUF b
.gate x BUF w
.outputs v x
.reset a=0 b=0 u=0 v=0 w=0 x=0
.k 8
"""


def payload_digest(payload) -> str:
    doc = {
        k: v
        for k, v in payload.items()
        if k not in ("cpu_seconds", "schema_version", "telemetry")
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def keys_by_site(net_text, options=None):
    """Map ``frozenset(signal names of the cone)`` -> cohort key, which
    is stable across renames/index shifts for *unchanged* cones."""
    circuit = parse_netlist(net_text)
    options = options or AtpgOptions()
    salt = cohort_salt(circuit, "complex", options)
    universe = fault_universe(circuit, options.fault_model)
    out = {}
    for cohort in partition(circuit, universe, salt):
        names = frozenset(circuit.signal_name(i) for i in cohort.cone)
        out[names] = cohort.key
    return out


# -- invalidation contract ---------------------------------------------


def test_rename_signal_invalidates_only_cones_that_see_it():
    renamed = (
        PAIR_NET.replace("w BUF b", "ww BUF b")
        .replace("x BUF w", "x BUF ww")
        .replace("w=0", "ww=0")
    )
    base, edit = keys_by_site(PAIR_NET), keys_by_site(renamed)
    # a-chain cones never contain w: identical keys survive the rename.
    survivors = {c for c in base if base[c] == edit.get(c)}
    assert survivors == {c for c in base if "w" not in c}
    assert survivors  # the a-chain really is unaffected
    # every cone that saw w got a new key (under its renamed cone set)
    assert all("w" not in c for c in edit if edit[c] in base.values())


def test_added_fanout_widens_cone_and_invalidates():
    widened = PAIR_NET.replace(
        ".outputs v x", ".gate y BUF u\n.outputs v x y"
    ).replace(".reset a=0", ".reset y=0 a=0")
    base, edit = keys_by_site(PAIR_NET), keys_by_site(widened)
    # cones containing u now also contain the new reader y -> new keys
    for cone, key in base.items():
        if "u" in cone:
            assert cone not in edit  # the cone set itself grew
            assert key not in edit.values()
    # the b-chain is untouched: same cones, same keys (the .outputs
    # interface change lands in the salt, so check cone sets only)
    for cone in base:
        if "u" not in cone:
            assert cone in edit


def test_out_of_cone_edit_keeps_cohort_keys():
    # upstream-only edit: swap the b-chain's head gate type; the
    # a-chain's cones and gate rows are untouched.
    edited = PAIR_NET.replace("w BUF b", "w NOT b").replace("b=0 u=0 v=0 w=0", "b=0 u=0 v=0 w=1")
    base, edit = keys_by_site(PAIR_NET), keys_by_site(edited)
    for cone, key in base.items():
        if "w" not in cone:
            assert edit[cone] == key
        else:
            assert edit[cone] != key


def test_option_change_invalidates_globally():
    base = keys_by_site(PAIR_NET)
    tweaked = keys_by_site(PAIR_NET, AtpgOptions(random_walks=7))
    assert set(base) == set(tweaked)  # same cones...
    assert all(base[c] != tweaked[c] for c in base)  # ...all new keys


def test_fault_model_change_invalidates_globally():
    base = keys_by_site(PAIR_NET, AtpgOptions(fault_model="input"))
    other = keys_by_site(PAIR_NET, AtpgOptions(fault_model="output"))
    assert not set(base.values()) & set(other.values())


def test_cssg_fingerprint_rename_invariant_logic_sensitive():
    circuit = parse_netlist(PAIR_NET)
    renamed = parse_netlist(
        PAIR_NET.replace("w BUF b", "ww BUF b")
        .replace("x BUF w", "x BUF ww")
        .replace("w=0", "ww=0")
    )
    relogic = parse_netlist(
        PAIR_NET.replace("w BUF b", "w NOT b").replace(
            "b=0 u=0 v=0 w=0", "b=0 u=0 v=0 w=1"
        )
    )
    fp = lambda c: cssg_fingerprint(c, None, None, "exact")
    assert fp(renamed) == fp(circuit)
    assert fp(relogic) != fp(circuit)


def test_validate_partial_rejects_wrong_faults_and_schema():
    circuit = parse_netlist(PAIR_NET)
    options = AtpgOptions()
    salt = cohort_salt(circuit, "complex", options)
    cohorts = partition(
        circuit, fault_universe(circuit, options.fault_model), salt
    )
    a, b = cohorts[0], cohorts[1]
    doc = {
        "version": COHORT_SCHEMA_VERSION,
        "faults": [
            [f.kind, circuit.signal_name(f.gate), circuit.signal_name(f.site), f.value]
            for f in a.faults
        ],
        "statuses": [{} for _ in a.faults],
        "tests": [],
    }
    assert validate_partial(circuit, a, doc)
    assert not validate_partial(circuit, b, doc)  # wrong fault list
    assert not validate_partial(
        circuit, a, {**doc, "version": COHORT_SCHEMA_VERSION + 1}
    )
    assert not validate_partial(circuit, a, None)


def test_cohort_plan_partitions_the_universe_exactly():
    job = expand(CampaignSpec(benchmarks=["dff"], fault_models=("input",)))[0]
    cohorts = cohort_plan(job)
    from repro.campaign.runner import load_job_circuit

    circuit = load_job_circuit(job)
    universe = fault_universe(circuit, "input")
    seen = [f for c in cohorts for f in c.faults]
    assert sorted(map(repr, seen)) == sorted(map(repr, universe))
    assert len(seen) == len(universe)
    assert len({c.key for c in cohorts}) == len(cohorts)


# -- execution paths ---------------------------------------------------


def test_single_gate_edit_reruns_only_affected_cohorts(tmp_path):
    net = tmp_path / "pair.net"
    net.write_text(PAIR_NET)
    store = ResultStore(tmp_path / "cache")
    spec = lambda: CampaignSpec(
        benchmarks=[str(net)], fault_models=("input",)
    )
    job = expand(spec())[0]
    _payload, _live, cold = execute_job_incremental(job, store)
    assert cold.cohorts_executed == cold.cohorts_total > 1

    # b-chain logic edit: only cones containing w or x go stale
    net.write_text(
        PAIR_NET.replace("x BUF w", "x NOT w").replace("x=0", "x=1")
    )
    edited = expand(spec())[0]
    assert edited.key != job.key
    payload, _live, warm = execute_job_incremental(edited, store)
    assert warm.cohorts_total == cold.cohorts_total
    assert 0 < warm.cohorts_reused < warm.cohorts_total
    assert warm.cohorts_executed == warm.cohorts_total - warm.cohorts_reused
    assert payload["n_covered"] == payload["n_total"]

    # rerun on the edited circuit: pure merge, identical payload
    again, live, merge = execute_job_incremental(edited, store)
    assert live is None and merge.cohorts_executed == 0
    assert payload_digest(again) == payload_digest(payload)


def test_deadline_bounded_jobs_bypass_the_incremental_layer(tmp_path):
    store = ResultStore(tmp_path)
    job = expand(
        CampaignSpec(
            benchmarks=["dff"],
            fault_models=("input",),
            options=AtpgOptions(deadline_seconds=60.0),
        )
    )[0]
    payload, live, stats = execute_job_incremental(job, store)
    assert stats is None and live is not None
    assert payload["n_total"] > 0
    assert not store.class_entries("cohorts")  # nothing was cached


def test_refresh_reexecutes_but_repopulates(tmp_path):
    store = ResultStore(tmp_path)
    job = expand(CampaignSpec(benchmarks=["dff"], fault_models=("input",)))[0]
    execute_job_incremental(job, store)
    payload, live, stats = execute_job_incremental(job, store, refresh=True)
    assert stats.cohorts_reused == 0 and live is not None
    merged, live2, stats2 = execute_job_incremental(job, store)
    assert live2 is None and stats2.cohorts_reused == stats2.cohorts_total
    assert payload_digest(merged) == payload_digest(payload)


# -- golden identity on the paper's full benchmark set -----------------


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_incremental_matches_golden_digests(name, tmp_path):
    """Cold incremental run and warm cohort merge are both
    payload-identical to the recorded from-scratch behaviour."""
    golden = json.loads(GOLDEN_PATH.read_text())
    store = ResultStore(tmp_path)
    cssg_memo = {}
    for model in ("output", "input"):
        job = expand(
            CampaignSpec(benchmarks=[name], fault_models=(model,))
        )[0]
        cold, _live, stats = execute_job_incremental(job, store, cssg_memo)
        assert stats.cohorts_executed == stats.cohorts_total
        assert payload_digest(cold) == golden[f"{name}/{model}"], (
            f"{name}/{model}: cold incremental payload drifted from the "
            "from-scratch golden"
        )
        warm, live, merge = execute_job_incremental(job, store, cssg_memo)
        assert live is None and merge.cohorts_reused == merge.cohorts_total
        assert payload_digest(warm) == golden[f"{name}/{model}"], (
            f"{name}/{model}: merged cohort partials drifted from the "
            "from-scratch golden"
        )


# -- store satellites --------------------------------------------------


def test_stats_log_rotation_preserves_counts(tmp_path, monkeypatch):
    import repro.campaign.store as store_mod

    monkeypatch.setattr(store_mod, "STATS_LOG_MAX_BYTES", 2048)
    store = ResultStore(tmp_path, track_stats=True)
    store.put("a" * 64, {"x": 1})
    for i in range(200):
        store.get("a" * 64)
        store.get("b" * 64)
        store.get_cohort("c" * 64)
    log = tmp_path / "stats.log"
    assert log.stat().st_size < 4 * 2048  # capped, not unbounded
    stats = store.stats()
    assert stats["lookups"]["hits"] == 200
    assert stats["lookups"]["misses"] == 200
    assert stats["classes"]["cohorts"]["lookups"]["misses"] == 200
    assert stats["lookups"]["hit_rate"] == 0.5


def test_prune_plan_reports_reclaimable_bytes_per_class(tmp_path):
    store = ResultStore(tmp_path)
    store.put("a" * 64, {"kind": "result"})
    store.put("b" * 64, {"kind": "result"})
    store.put_cohort("c" * 64, {"kind": "partial"})
    store.put_cssg("d" * 64, {"kind": "graph"})
    plan = store.prune_plan(max_age_seconds=0.0, now=time.time() + 60)
    assert plan["results"]["n_entries"] == 2
    assert plan["cohorts"]["n_entries"] == 1
    assert plan["cssg"]["n_entries"] == 1
    assert plan["total"]["n_entries"] == 4
    assert plan["total"]["bytes"] == sum(
        plan[c]["bytes"] for c in ("results", "cohorts", "cssg")
    )
    # dry: nothing was deleted
    assert len(store.class_entries("results")) == 2
    empty = store.prune_plan(max_age_seconds=3600.0)
    assert empty["total"]["n_entries"] == 0


# -- generator-driven invalidation (fuzz mutations) --------------------

# Bounded options keep generated-circuit ATPG sub-second; aborted-by-cap
# faults are deterministic, so reuse accounting is unaffected.
FUZZ_OPTS = AtpgOptions(
    fault_model="output",
    random_walks=4,
    cssg_method="exact",
    max_input_changes=1,
    max_product_states=4000,
)

#: Johnson-ring STG scenario with a choice block: 6 signals, 4 output
#: cohorts, and every mutation op below hits *some but not all* cones —
#: found by scanning seeds, pinned for determinism.
FUZZ_SEED = 4


def fuzz_net_text():
    from repro.circuit.parser import netlist_to_text
    from repro.fuzz.generator import generate_scenario

    scenario = generate_scenario(FUZZ_SEED)
    assert scenario is not None and scenario.kind == "stg"
    return netlist_to_text(scenario.circuit())


def keyset(net_text):
    circuit = parse_netlist(net_text)
    salt = cohort_salt(circuit, "complex", FUZZ_OPTS)
    universe = fault_universe(circuit, FUZZ_OPTS.fault_model)
    return {c.key for c in partition(circuit, universe, salt)}


def run_incremental(net_path, store):
    spec = CampaignSpec(
        benchmarks=[str(net_path)],
        fault_models=(FUZZ_OPTS.fault_model,),
        options=FUZZ_OPTS,
    )
    return execute_job_incremental(expand(spec)[0], store)


def test_generated_rename_reuse_count_matches_key_prediction(tmp_path):
    """A rename must reuse *exactly* the cohorts whose cones never see
    the old name — predicted ahead of time by key-set intersection."""
    import random

    from repro.fuzz.mutate import mutate_netlist

    base = fuzz_net_text()
    mutation = mutate_netlist(base, "rename", random.Random(FUZZ_SEED))
    assert mutation is not None and mutation.preserving
    expected_reused = len(keyset(mutation.text) & keyset(base))

    net = tmp_path / "fz.net"
    net.write_text(base)
    store = ResultStore(tmp_path / "cache")
    _p, _l, cold = run_incremental(net, store)
    assert cold.cohorts_executed == cold.cohorts_total

    net.write_text(mutation.text)
    payload, _l, warm = run_incremental(net, store)
    assert warm.cohorts_reused == expected_reused
    assert 0 < warm.cohorts_reused < warm.cohorts_total  # partial, not trivial
    assert warm.cohorts_executed == warm.cohorts_total - expected_reused
    assert payload["n_total"] > 0


def test_generated_splice_widens_cones_and_covers_new_universe(tmp_path):
    """A fanout splice widens every cone containing the spliced
    consumer (new keys) and changes the fault universe itself; the
    merged payload must cover the *mutated* universe exactly."""
    import random

    from repro.fuzz.mutate import mutate_netlist

    base = fuzz_net_text()
    mutation = mutate_netlist(base, "splice", random.Random(FUZZ_SEED))
    assert mutation is not None and not mutation.preserving
    base_map = keys_by_site(base, FUZZ_OPTS)
    edit_map = keys_by_site(mutation.text, FUZZ_OPTS)
    consumer = mutation.detail
    for cone, key in base_map.items():
        if consumer in cone:
            assert key not in edit_map.values()  # widened -> new key
    expected_reused = len(set(edit_map.values()) & set(base_map.values()))

    net = tmp_path / "fz.net"
    net.write_text(base)
    store = ResultStore(tmp_path / "cache")
    run_incremental(net, store)

    net.write_text(mutation.text)
    payload, _l, warm = run_incremental(net, store)
    assert warm.cohorts_reused == expected_reused
    assert 0 < warm.cohorts_reused < warm.cohorts_total
    universe = fault_universe(
        parse_netlist(mutation.text), FUZZ_OPTS.fault_model
    )
    assert payload["n_total"] == len(universe)
    assert len(payload["faults"]) == len(universe)


def test_generated_rewrite_is_out_of_cone_for_unaffected_cohorts():
    """Double-negating one gate changes keys for exactly the cones that
    contain it; every other cone keeps its key byte-identical (the
    out-of-cone row of the docs/incremental.md matrix)."""
    import random

    from repro.fuzz.mutate import mutate_netlist

    base = fuzz_net_text()
    mutation = mutate_netlist(base, "rewrite", random.Random(FUZZ_SEED))
    assert mutation is not None
    target = mutation.target
    base_map = keys_by_site(base, FUZZ_OPTS)
    edit_map = keys_by_site(mutation.text, FUZZ_OPTS)
    assert set(base_map) == set(edit_map)  # same cone sets
    touched = {cone for cone in base_map if target in cone}
    assert touched and touched != set(base_map)
    for cone in base_map:
        if cone in touched:
            assert edit_map[cone] != base_map[cone]
        else:
            assert edit_map[cone] == base_map[cone]
