"""Materialized faulty circuits and set-based exact fault simulation."""

from repro.circuit.faults import Fault, input_fault_universe, materialize_fault
from repro.core.exact_sim import faulty_apply, faulty_detects, faulty_reset_states
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary


def test_materialize_output_fault(celem):
    c = celem.index("c")
    fault = Fault("output", c, c, 1)
    faulty = materialize_fault(celem, fault)
    assert faulty.n_signals == celem.n_signals
    assert [s.name for s in faulty.signals] == [s.name for s in celem.signals]
    gate = next(g for g in faulty.gates if g.name == "c")
    for state in range(1 << faulty.n_signals):
        assert faulty.gate_eval(gate, state) == 1
    # Reset pre-sets the stuck node.
    assert faulty.value(faulty.require_reset(), "c") == 1


def test_materialize_input_fault_is_local(celem):
    c, a = celem.index("c"), celem.index("a")
    fault = Fault("input", c, a, 1)
    faulty = materialize_fault(celem, fault)
    cgate = next(g for g in faulty.gates if g.name == "c")
    # c no longer reads a...
    assert a not in cgate.support
    # ...but a's own buffer is untouched.
    agate = next(g for g in faulty.gates if g.name == "a")
    assert agate.support == (celem.index("A"),)


def test_materialized_matches_injected_ternary(celem):
    """The materialized netlist and on-the-fly injection must agree."""
    cssg = build_cssg(celem)
    for fault in input_fault_universe(celem):
        faulty = materialize_fault(celem, fault)
        injected = ternary.settle_from_reset(celem, cssg.reset, fault)
        materialized = ternary.settle_from_reset(faulty, cssg.reset)
        assert injected == materialized, fault.describe(celem)


def test_reset_states_singleton_for_clean_fault(celem):
    c = celem.index("c")
    fault = Fault("output", c, c, 0)
    faulty = materialize_fault(celem, fault)
    states = faulty_reset_states(faulty, faulty.require_reset())
    assert states is not None and len(states) == 1
    only = next(iter(states))
    assert faulty.is_stable(only)


def test_apply_tracks_all_outcomes(race):
    """On the racy circuit the faulty set grows past one state."""
    fault = Fault("input", race.index("c"), race.index("c"), 0)  # benign
    faulty = materialize_fault(race, fault)
    states = faulty_reset_states(faulty, faulty.require_reset())
    assert states is not None
    after = faulty_apply(faulty, states, 0b01)  # the non-confluent vector
    assert after is not None and len(after) == 2


def test_apply_respects_max_set(race):
    fault = Fault("input", race.index("c"), race.index("c"), 0)
    faulty = materialize_fault(race, fault)
    states = faulty_reset_states(faulty, faulty.require_reset())
    assert faulty_apply(faulty, states, 0b01, max_set=1) is None


def test_faulty_machine_oscillation_and_healing(oscillator):
    # c's pin from d stuck at 0 makes c constant-1: the oscillation is
    # *healed* and the machine settles under the hot vector.
    healed = Fault("input", oscillator.index("c"), oscillator.index("d"), 0)
    faulty = materialize_fault(oscillator, healed)
    states = faulty_reset_states(faulty, faulty.require_reset())
    assert states is not None
    after = faulty_apply(faulty, states, 1)
    assert after is not None and len(after) == 1
    # a's pin stuck high starts the chase right at reset: oscillation,
    # so the exact simulator reports fallback (None).
    hot = Fault("input", oscillator.index("a"), oscillator.index("A"), 1)
    faulty2 = materialize_fault(oscillator, hot)
    assert faulty_reset_states(faulty2, faulty2.require_reset()) is None


def test_detects_requires_all_members_to_differ(celem):
    good = celem.require_reset()  # c = 0
    c = celem.index("c")
    differ = good | (1 << c)
    assert faulty_detects(celem, good, frozenset([differ]))
    assert not faulty_detects(celem, good, frozenset([differ, good]))
    assert not faulty_detects(celem, good, frozenset())
