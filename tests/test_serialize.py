"""JSON round-trip contract for ATPG results (the cache's foundation)."""

import json

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import Fault
from repro.core.atpg import (
    RESULT_SCHEMA_VERSION,
    AtpgEngine,
    AtpgOptions,
    AtpgResult,
    CssgSummary,
    FaultStatus,
)
from repro.core.sequences import Test
from repro.errors import ReproError


@pytest.fixture(scope="module")
def ebergen_result():
    circuit = load_benchmark("ebergen", "complex")
    return circuit, AtpgEngine(circuit, AtpgOptions(seed=3)).run()


def test_fault_round_trip():
    fault = Fault("input", 5, 2, 1)
    assert Fault.from_json(fault.to_json()) == fault


def test_test_round_trip():
    test = Test((3, 1, 2), [Fault("output", 4, 4, 0)], source="random")
    back = Test.from_json_dict(test.to_json_dict())
    assert back == test
    assert isinstance(back.patterns, tuple)


def test_fault_status_round_trip():
    status = FaultStatus(Fault("input", 1, 0, 1), "detected", "rnd", 7)
    assert FaultStatus.from_json_dict(status.to_json_dict()) == status
    none_ix = FaultStatus(Fault("output", 2, 2, 0), "undetectable")
    assert FaultStatus.from_json_dict(none_ix.to_json_dict()) == none_ix


def test_fault_status_reason_round_trip():
    """Schema v2: the abort reason survives serialization."""
    for reason in ("budget", "product-states", "activation-tries"):
        status = FaultStatus(Fault("input", 3, 1, 0), "aborted", reason=reason)
        back = FaultStatus.from_json_dict(status.to_json_dict())
        assert back == status and back.reason == reason
    assert RESULT_SCHEMA_VERSION == 5


def test_cssg_block_round_trips_symbolic_facts():
    """Schema v3: the resolved method and the symbolic-kernel facts
    survive serialization into the CssgSummary."""
    from repro.flow import Flow

    circuit = load_benchmark("hazard", "complex")
    result = Flow.default().run(
        circuit, AtpgOptions(seed=1, cssg_method="symbolic")
    )
    data = result.to_json_dict()
    block = data["cssg"]
    assert block["method"] == "symbolic"
    assert block["n_tcsg_states"] > 0
    assert block["peak_bdd_nodes"] > 0
    assert block["n_image_iterations"] > 0
    back = AtpgResult.from_json_dict(data, circuit)
    assert back.cssg.method == "symbolic"
    assert back.cssg.n_tcsg_states == block["n_tcsg_states"]
    assert back.to_json_dict() == data


def test_aborted_result_round_trips_reasons():
    """A deadline-cut partial result keeps its abort ledger through
    JSON (the campaign cache path for bounded runs)."""
    from repro.flow import Flow

    circuit = load_benchmark("ebergen", "complex")
    result = Flow.default().run(
        circuit, AtpgOptions(seed=1, deadline_seconds=0.0)
    )
    assert result.n_aborted == result.n_total
    back = AtpgResult.from_json_dict(result.to_json_dict(), circuit)
    assert back.to_json_dict() == result.to_json_dict()
    assert back.abort_reasons() == {"budget": result.n_total}


def test_options_round_trip():
    opts = AtpgOptions(fault_model="output", seed=9, k=12, collapse=True)
    assert AtpgOptions.from_json_dict(opts.to_json_dict()) == opts


def test_options_reject_unknown_fields():
    with pytest.raises(ReproError, match="unknown AtpgOptions"):
        AtpgOptions.from_json_dict({"fault_model": "input", "bogus": 1})


def test_result_round_trip_is_a_fixed_point(ebergen_result):
    circuit, result = ebergen_result
    data = result.to_json_dict()
    assert data["schema_version"] == RESULT_SCHEMA_VERSION
    back = AtpgResult.from_json_dict(data, circuit)
    assert back.to_json_dict() == data  # canonical form: exact fixed point


def test_result_round_trip_equality(ebergen_result):
    circuit, result = ebergen_result
    back = AtpgResult.from_json_dict(result.to_json_dict(), circuit)
    assert back.options == result.options
    assert back.faults == result.faults
    assert back.statuses == result.statuses  # per-fault detection records
    assert [t.patterns for t in back.tests] == [t.patterns for t in result.tests]
    assert [t.faults for t in back.tests] == [t.faults for t in result.tests]
    assert (back.n_total, back.n_covered, back.coverage) == (
        result.n_total,
        result.n_covered,
        result.coverage,
    )
    assert back.cssg == CssgSummary(
        k=result.cssg.k,
        reset=result.cssg.reset,
        n_states=result.cssg.n_states,
        n_edges=result.cssg.n_edges,
        method=result.cssg.method,
        n_tcsg_states=result.cssg.n_tcsg_states,
        peak_bdd_nodes=result.cssg.peak_bdd_nodes,
        n_gc_passes=result.cssg.n_gc_passes,
        n_reorders=result.cssg.n_reorders,
        n_image_iterations=result.cssg.n_image_iterations,
    )
    assert back.summary() == result.summary()


def test_result_survives_json_text(ebergen_result):
    circuit, result = ebergen_result
    text = json.dumps(result.to_json_dict())
    back = AtpgResult.from_json_dict(json.loads(text), circuit)
    assert back.to_json_dict() == result.to_json_dict()


def test_result_rejects_wrong_schema_version(ebergen_result):
    circuit, result = ebergen_result
    data = result.to_json_dict()
    data["schema_version"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(ReproError, match="schema version"):
        AtpgResult.from_json_dict(data, circuit)


def test_result_rejects_wrong_circuit(ebergen_result):
    circuit, result = ebergen_result
    other = load_benchmark("hazard", "complex")
    with pytest.raises(ReproError, match="serialized result is for"):
        AtpgResult.from_json_dict(result.to_json_dict(), other)
