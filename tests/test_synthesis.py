"""STG -> gate-level synthesis: conformance, styles, reset, CSC gate."""

import pytest

from repro.errors import CscError, SynthesisError
from repro.sgraph.cssg import build_cssg
from repro.stg.parser import parse_stg
from repro.stg.reachability import build_state_graph
from repro.stg.synthesis import (
    buffer_name,
    hold_pairs,
    next_state_cover,
    synthesize,
)
from repro.stg.twolevel import cover_eval


def test_complex_gate_count(handshake_stg):
    circuit = synthesize(handshake_stg, style="complex")
    # one buffer per input + one gate per non-input signal
    assert circuit.n_gates == 1 + 2
    assert circuit.n_inputs == 1
    assert circuit.output_names == ("ro", "ai")


def test_reset_state_is_stable_and_matches_initial_code(handshake_stg):
    sg = build_state_graph(handshake_stg)
    circuit = synthesize(handshake_stg, style="complex", sg=sg)
    reset = circuit.require_reset()
    assert circuit.is_stable(reset)
    code0 = sg.code_of(sg.initial)
    for i, sig in enumerate(handshake_stg.signals):
        name = buffer_name(sig) if handshake_stg.is_input(sig) else sig
        assert circuit.value(reset, name) == (code0 >> i) & 1


def test_circuit_replays_stg_behaviour(handshake_stg):
    """Driving the synthesized circuit along the specified input bursts
    must visit exactly the STG's stable codes."""
    sg = build_state_graph(handshake_stg)
    circuit = synthesize(handshake_stg, style="complex", sg=sg)
    cssg = build_cssg(circuit)
    # In-spec drive: toggle ri each cycle (the only input).
    state = cssg.reset
    seen_codes = []
    for pattern in (1, 0, 1, 0):
        state = cssg.edges[state][pattern]
        code = 0
        for i, sig in enumerate(handshake_stg.signals):
            name = buffer_name(sig) if handshake_stg.is_input(sig) else sig
            code |= circuit.value(state, name) << i
        seen_codes.append(code)
    assert seen_codes == [0b111, 0b000, 0b111, 0b000]


def test_next_state_cover_correct(handshake_stg):
    sg = build_state_graph(handshake_stg)
    for sig in handshake_stg.non_input_signals:
        for cover_kind in ("irredundant", "complete", "hazard-aware"):
            cubes, on, off = next_state_cover(sg, sig, cover_kind)
            for m in on:
                assert cover_eval(cubes, m) == 1
            for m in off:
                assert cover_eval(cubes, m) == 0


def test_hold_pairs_cover_static_one_edges(handshake_stg):
    sg = build_state_graph(handshake_stg)
    pairs = hold_pairs(sg, "ro")
    for a, b in pairs:
        assert bin(a ^ b).count("1") == 1  # single-signal SG edges


def test_two_level_structure(handshake_stg):
    circuit = synthesize(handshake_stg, style="two-level")
    product_gates = [g for g in circuit.gates if "$p" in g.name]
    or_gates = [g for g in circuit.gates if g.name in ("ro", "ai")]
    assert product_gates and len(or_gates) == 2
    assert circuit.is_stable(circuit.require_reset())


def test_dc_policy_off_gives_exact_function(handshake_stg):
    sg = build_state_graph(handshake_stg)
    cubes, on, off = next_state_cover(sg, "ro", "irredundant", dc_policy="off")
    nv = len(handshake_stg.signals)
    for m in range(1 << nv):
        assert cover_eval(cubes, m) == (1 if m in on else 0)


def test_bad_arguments_rejected(handshake_stg):
    sg = build_state_graph(handshake_stg)
    with pytest.raises(SynthesisError):
        next_state_cover(sg, "ro", "bogus")
    with pytest.raises(SynthesisError):
        next_state_cover(sg, "ro", "irredundant", dc_policy="bogus")
    with pytest.raises(SynthesisError):
        synthesize(handshake_stg, style="triangular")


def test_csc_violation_blocks_synthesis():
    text = (
        ".inputs a\n.outputs z\n.graph\n"
        "a+ z+\nz+ a-\na- a+/2\na+/2 z-\nz- a-/2\na-/2 a+\n"
        ".marking { <a-/2,a+> }\n"
    )
    with pytest.raises(CscError):
        synthesize(parse_stg(text))


def test_internal_signals_not_marked_output():
    text = (
        ".inputs a\n.outputs b\n.internal x\n.graph\n"
        "a+ b+\nb+ a-\na- x+\nx+ b-\nb- x-\nx- a+\n"
        ".marking { <x-,a+> }\n"
    )
    circuit = synthesize(parse_stg(text))
    assert circuit.output_names == ("b",)
    assert "x" in [g.name for g in circuit.gates]


def test_both_styles_have_same_interface(handshake_stg):
    cx = synthesize(handshake_stg, style="complex")
    tl = synthesize(handshake_stg, style="two-level")
    assert cx.input_names == tl.input_names
    assert cx.output_names == tl.output_names
