"""Result-table rendering."""

from repro.benchmarks_data import load_benchmark
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.core.report import TableRow, format_table, result_row


def test_result_row_combines_models():
    circuit = load_benchmark("hazard", "complex")
    out_res = AtpgEngine(circuit, AtpgOptions(fault_model="output", seed=1)).run()
    in_res = AtpgEngine(circuit, AtpgOptions(fault_model="input", seed=1)).run()
    row = result_row("hazard", out_res, in_res)
    assert row.out_tot == out_res.n_total
    assert row.in_cov == in_res.n_covered
    assert row.rnd == in_res.n_random
    assert row.cpu >= 0
    assert row.out_fc == 1.0 and row.in_fc == 1.0


def test_result_row_without_output_run():
    circuit = load_benchmark("hazard", "complex")
    in_res = AtpgEngine(circuit, AtpgOptions(fault_model="input", seed=1)).run()
    row = result_row("hazard", None, in_res)
    assert row.out_tot == 0 and row.out_fc == 1.0


def test_format_table_layout():
    rows = [
        TableRow("alpha", 10, 10, 20, 18, 9, 6, 3, 1.25),
        TableRow("beta", 8, 6, 12, 9, 5, 4, 0, 0.5),
    ]
    text = format_table(rows, title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "example" in lines[1]
    assert any("alpha" in line and "1.25" in line for line in lines)
    assert "Total output-stuck-at FC: 88.89%" in text
    assert "Total input-stuck-at  FC: 84.38%" in text


def test_format_table_handles_empty_totals():
    rows = [TableRow("x", 0, 0, 4, 4, 4, 0, 0, 0.1)]
    text = format_table(rows)
    assert "output-stuck-at" not in text
    assert "input-stuck-at" in text
