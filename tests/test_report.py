"""Result-table rendering."""

from repro.benchmarks_data import load_benchmark
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.core.report import TableRow, format_table, result_row, to_csv, to_json


def test_result_row_combines_models():
    circuit = load_benchmark("hazard", "complex")
    out_res = AtpgEngine(circuit, AtpgOptions(fault_model="output", seed=1)).run()
    in_res = AtpgEngine(circuit, AtpgOptions(fault_model="input", seed=1)).run()
    row = result_row("hazard", out_res, in_res)
    assert row.out_tot == out_res.n_total
    assert row.in_cov == in_res.n_covered
    assert row.rnd == in_res.n_random
    assert row.cpu >= 0
    assert row.out_fc == 1.0 and row.in_fc == 1.0


def test_result_row_without_output_run():
    circuit = load_benchmark("hazard", "complex")
    in_res = AtpgEngine(circuit, AtpgOptions(fault_model="input", seed=1)).run()
    row = result_row("hazard", None, in_res)
    assert row.out_tot == 0 and row.out_fc == 1.0


def test_format_table_layout():
    rows = [
        TableRow("alpha", 10, 10, 20, 18, 9, 6, 3, 1.25),
        TableRow("beta", 8, 6, 12, 9, 5, 4, 0, 0.5),
    ]
    text = format_table(rows, title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "example" in lines[1]
    assert any("alpha" in line and "1.25" in line for line in lines)
    assert "Total output-stuck-at FC: 88.89%" in text
    assert "Total input-stuck-at  FC: 84.38%" in text


def test_format_table_handles_empty_totals():
    rows = [TableRow("x", 0, 0, 4, 4, 4, 0, 0, 0.1)]
    text = format_table(rows)
    assert "output-stuck-at" not in text
    assert "input-stuck-at" in text


def test_to_csv_layout():
    rows = [
        TableRow("alpha", 10, 10, 20, 18, 9, 6, 3, 1.25),
        TableRow("beta", 8, 6, 12, 9, 5, 4, 0, 0.5),
    ]
    lines = to_csv(rows).splitlines()
    assert lines[0] == (
        "name,out_tot,out_cov,out_fc,in_tot,in_cov,in_fc,"
        "rnd,three_ph,sim,cpu,aborted,abort_reasons,"
        "cssg_method,cssg_states,cssg_edges,tcsg_states,"
        "peak_bdd_nodes,gc_passes,reorders,image_iters,models,"
        "stage_seconds,bdd_cache_hits,bdd_cache_lookups"
    )
    assert lines[1].startswith("alpha,10,10,1.0,20,18,0.9,9,6,3,1.25")
    assert len(lines) == 3


def test_row_carries_cssg_and_symbolic_columns():
    """The paper-table state counts and kernel stats reach the CSV/JSON
    rows when the CSSG was built symbolically."""
    circuit = load_benchmark("hazard", "complex")
    options = AtpgOptions(fault_model="input", seed=1, cssg_method="symbolic")
    from repro.flow import Flow

    in_res = Flow.default().run(circuit, options)
    row = result_row("hazard", None, in_res)
    assert row.cssg_method == "symbolic"
    assert row.cssg_states == in_res.cssg.n_states
    assert row.cssg_edges == in_res.cssg.n_edges
    assert row.tcsg_states > 0
    assert row.peak_bdd_nodes > 0
    assert row.image_iters > 0
    data = row.to_dict()
    for key in ("cssg_method", "cssg_states", "tcsg_states", "peak_bdd_nodes"):
        assert key in data
    # An explicit construction reports its method with zeroed kernel stats.
    exact = Flow.default().run(
        circuit, AtpgOptions(fault_model="input", seed=1, cssg_method="exact")
    )
    row2 = result_row("hazard", None, exact)
    assert row2.cssg_method == "exact"
    assert row2.peak_bdd_nodes == 0 and row2.tcsg_states == 0


def test_to_json_round_trips_rows():
    import json

    rows = [TableRow("alpha", 10, 10, 20, 18, 9, 6, 3, 1.25)]
    data = json.loads(to_json(rows))
    assert data == [rows[0].to_dict()]
    assert data[0]["in_fc"] == 0.9
