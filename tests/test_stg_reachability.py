"""State-graph construction: codes, consistency, inference, CSC."""

import pytest

from repro.errors import ConsistencyError, SafenessError, StgError
from repro.stg.parser import parse_stg
from repro.stg.reachability import build_state_graph, check_csc, require_csc
from repro.errors import CscError


def test_handshake_state_graph(handshake_stg):
    sg = build_state_graph(handshake_stg)
    assert sg.n_states == 6
    assert len(sg.codes()) == 6  # pure cycle: all codes distinct
    assert sg.code_of(sg.initial) == 0


def test_next_state_value_semantics(handshake_stg):
    sg = build_state_graph(handshake_stg)
    # Initial state: ri+ enabled (an input), outputs quiescent.
    assert sg.enabled_signals(sg.initial) == {"ri"}
    assert sg.next_state_value(sg.initial, "ro") == 0
    # After ri+: ro+ becomes enabled -> NS(ro) = 1.
    after = sg.edges[sg.initial][0][1]
    assert sg.next_state_value(after, "ro") == 1
    # A signal holding 1 with no fall enabled keeps NS = 1.
    # Walk to the all-up state.
    sid = sg.initial
    for _ in range(3):
        sid = sg.edges[sid][0][1]
    assert sg.code_of(sid) == 0b111
    assert sg.next_state_value(sid, "ro") == 1


def test_initial_value_inference_vs_explicit():
    text = (
        ".inputs c\n.outputs q qb\n.graph\n"
        "c+ qb-\nqb- q+\nq+ c-\nc- q-\nq- qb+\nqb+ c+\n"
        ".marking { <qb+,c+> }\n"
    )
    inferred = build_state_graph(parse_stg(text))
    explicit = build_state_graph(parse_stg(text + ".initial c=0 q=0 qb=1\n"))
    assert inferred.code_of(inferred.initial) == explicit.code_of(explicit.initial)
    assert inferred.codes() == explicit.codes()


def test_incomplete_initial_rejected():
    text = (
        ".inputs a\n.outputs z\n.graph\na+ z+\nz+ a-\na- z-\nz- a+\n"
        ".marking { <z-,a+> }\n.initial a=0\n"
    )
    with pytest.raises(StgError, match="missing"):
        build_state_graph(parse_stg(text))


def test_consistency_violation_detected():
    # z+ fires twice in a row around the loop: inconsistent.
    text = (
        ".inputs a\n.outputs z\n.graph\n"
        "a+ z+/1\nz+/1 z+/2\nz+/2 a-\na- z-\nz- a+\n"
        ".marking { <z-,a+> }\n"
    )
    with pytest.raises(ConsistencyError):
        build_state_graph(parse_stg(text))


def test_wrong_explicit_initial_caught_by_consistency():
    text = (
        ".inputs a\n.outputs z\n.graph\na+ z+\nz+ a-\na- z-\nz- a+\n"
        ".marking { <z-,a+> }\n.initial a=1 z=0\n"
    )
    with pytest.raises(ConsistencyError):
        build_state_graph(parse_stg(text))


def test_unsafe_net_rejected_during_reachability():
    # Fork without join: both tokens land in p eventually.
    text = (
        ".inputs a\n.outputs y z\n.graph\n"
        "a+ y+ z+\ny+ p\nz+ p\np a-\na- y- z-\ny- q\nz- q\nq a+\n"
        ".marking { q }\n"
    )
    # Place p receives a token from y+ and from z+ before a- consumes
    # one: 2 tokens -> unsafe.
    with pytest.raises(SafenessError):
        build_state_graph(parse_stg(text))


def test_csc_clean_on_handshake(handshake_stg):
    sg = build_state_graph(handshake_stg)
    assert check_csc(sg) == []
    require_csc(sg)  # must not raise


def test_csc_conflict_detected():
    # Two bursts with no internal signal: the code (a=0, z=0) appears
    # both "awaiting a+" (NS(z)=0 later... ) — construct the classic
    # conflict: z must react differently to the same input code.
    text = (
        ".inputs a\n.outputs z\n.graph\n"
        "a+ z+\nz+ a-\na- a+/2\na+/2 z-\nz- a-/2\na-/2 a+\n"
        ".marking { <a-/2,a+> }\n"
    )
    sg = build_state_graph(parse_stg(text))
    conflicts = check_csc(sg)
    assert conflicts
    assert any(sig == "z" for _, _, sig in conflicts)
    with pytest.raises(CscError):
        require_csc(sg)


def test_state_cap():
    text = (
        ".inputs a\n.outputs z\n.graph\na+ z+\nz+ a-\na- z-\nz- a+\n"
        ".marking { <z-,a+> }\n"
    )
    with pytest.raises(StgError, match="exceeds"):
        build_state_graph(parse_stg(text), cap=2)
