"""Arena-kernel parity: the flat-buffer fast paths vs the worklist engine.

The arena walk kernel (compiled generator, state in generator locals)
and the numpy slab kernel (uint64 buffers, levelized vectorized sweeps)
must be *bit-identical* to the per-step :class:`FaultBatch` path — same
settled states after every cycle, same detection words at every
observation — because Eichelberger's Algorithms A and B compute unique
lattice fixpoints regardless of evaluation order.

Checked here on every Table-1 benchmark under every registered fault
model's full universe, riding a deterministic random walk through the
CSSG.  This is the sim half of the PR's differential battery; the BDD
half lives in ``test_symbolic_diff.py``.
"""

import random
import zlib

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.faultmodels import get_model, model_names
from repro.sgraph.cssg import build_cssg
from repro.sim import arena
from repro.sim.batch import ChunkedFaultSim, FaultBatch

WALK_LEN = 8

_CSSG_CACHE = {}


def _cssg_for(name):
    if name not in _CSSG_CACHE:
        _CSSG_CACHE[name] = build_cssg(load_benchmark(name, "complex"))
    return _CSSG_CACHE[name]


def _walk_states(cssg, seed):
    """A deterministic (pattern, good-state) trail through the CSSG."""
    patterns = cssg.random_walk(random.Random(seed), WALK_LEN)
    trail = []
    good = cssg.reset
    for pattern in patterns:
        good = cssg.edges[good][pattern]
        trail.append((pattern, good))
    return trail


@pytest.mark.parametrize("model_name", model_names())
@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_arena_walk_and_slab_match_batch(name, model_name):
    cssg = _cssg_for(name)
    circuit = cssg.circuit
    faults = get_model(model_name).universe(circuit)
    if not faults:
        pytest.skip(f"{model_name} universe is empty on {name}")
    trail = _walk_states(cssg, seed=zlib.crc32(f"{name}:{model_name}".encode()))

    batch = FaultBatch(circuit, faults)
    state = batch.reset_and_settle(cssg.reset)
    walk = batch.walk(cssg.reset)
    slab = ChunkedFaultSim(circuit, faults).walk(cssg.reset)

    assert walk.state() == state
    assert slab.state() == state
    det_ref = batch.observe(state, cssg.reset)
    assert walk.observe(cssg.reset) == det_ref
    assert slab.observe(cssg.reset) == det_ref

    for pattern, good in trail:
        state = batch.apply_settled(state, pattern)
        det_ref = batch.observe(state, good)
        assert walk.step(pattern, good) == det_ref
        assert slab.step(pattern, good) == det_ref
        assert walk.state() == state
        assert slab.state() == state


def test_walk_is_restartable():
    """Each ``walk()`` call is an independent replay from reset."""
    cssg = _cssg_for("dff")
    faults = get_model("input").universe(cssg.circuit)
    batch = FaultBatch(cssg.circuit, faults)
    trail = _walk_states(cssg, seed=7)

    def run():
        walk = batch.walk(cssg.reset)
        det = walk.observe(cssg.reset)
        for pattern, good in trail:
            det |= walk.step(pattern, good)
        return det

    assert run() == run()


def test_empty_universe_width_zero():
    """Width-0 kernels settle and observe without faulting."""
    cssg = _cssg_for("dff")
    batch = FaultBatch(cssg.circuit, [])
    walk = batch.walk(cssg.reset)
    assert walk.observe(cssg.reset) == 0
    slab = ChunkedFaultSim(cssg.circuit, []).walk(cssg.reset)
    assert slab.observe(cssg.reset) == 0
    pattern, good = _walk_states(cssg, seed=1)[0]
    assert walk.step(pattern, good) == 0
    assert slab.step(pattern, good) == 0


def test_require_numpy_message(monkeypatch):
    """Without numpy the slab path fails with an actionable message."""
    monkeypatch.setattr(arena, "_np", None)
    with pytest.raises(ImportError, match=r"numpy.*setup\.py.*pip install numpy"):
        arena.require_numpy()


def test_require_numpy_returns_module():
    np = arena.require_numpy()
    assert np.uint64(3) == 3
