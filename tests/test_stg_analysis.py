"""STG health analysis: free-choice, input choice, persistency, deadness."""

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark_stg
from repro.stg.analysis import (
    analyse_stg,
    check_dead_signals,
    check_free_choice,
    check_input_choice,
    check_persistency,
)
from repro.stg.parser import parse_stg
from repro.stg.reachability import build_state_graph


def test_handshake_is_healthy(handshake_stg):
    report = analyse_stg(handshake_stg)
    assert report.healthy
    assert "healthy" in report.summary()


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_all_benchmarks_are_healthy(name):
    report = analyse_stg(load_benchmark_stg(name))
    assert report.healthy, report.summary()


def test_input_choice_detected():
    # A conflict place resolved by an *output* transition: the circuit
    # itself would have to choose — not allowed.
    text = (
        ".inputs a\n.outputs y z\n.graph\n"
        "p0 a+\na+ pc\npc y+\npc z+\n"
        "y+ a-/1\na-/1 y-\ny- p0\n"
        "z+ a-/2\na-/2 z-\nz- p0\n"
        ".marking { p0 }\n"
    )
    stg = parse_stg(text)
    assert check_input_choice(stg) == ["pc"]
    report = analyse_stg(stg)
    assert not report.healthy
    assert "output-resolved" in report.summary()


def test_free_choice_violation_detected():
    # pc's consumers also wait on another place -> not free choice.
    text = (
        ".inputs a b\n.outputs y\n.graph\n"
        "p0 a+\na+ pc\np0 b+\nb+ pq\n"
        "pc y+\npq y+\npc b-\n"
        "y+ a-\na- y-\ny- p0 p0x\n"
        "b- a-\n"
        ".marking { p0 p0x }\n"
    )
    # Construction details aside, the structural check only needs the
    # net: y+ consumes {pc, pq}, b- consumes {pc}: pc is a conflict place
    # whose consumer y+ has another input place.
    stg = parse_stg(text)
    assert "pc" in check_free_choice(stg)


def test_persistency_violation_detected():
    # Two outputs enabled together, firing one disables the other.
    text = (
        ".inputs a\n.outputs y z\n.graph\n"
        "p0 a+\na+ pc\npc y+\npc z+\n"
        "y+ a-/1\na-/1 y-\ny- p0\n"
        "z+ a-/2\na-/2 z-\nz- p0\n"
        ".marking { p0 }\n"
    )
    stg = parse_stg(text)
    sg = build_state_graph(stg)
    violations = check_persistency(sg)
    assert ("y+", "z+") in violations or ("z+", "y+") in violations


def test_input_withdrawal_is_not_a_violation():
    # Input choices (environment withdraws one option) are fine.
    text = (
        ".inputs a b\n.outputs y\n.graph\n"
        "p0 a+\np0 b+\n"
        "a+ y+/1\ny+/1 a-\na- y-/1\ny-/1 p0\n"
        "b+ y+/2\ny+/2 b-\nb- y-/2\ny-/2 p0\n"
        ".marking { p0 }\n"
    )
    sg = build_state_graph(parse_stg(text))
    assert check_persistency(sg) == []


def test_dead_signal_detected():
    # Signal d is declared but never fires: its transitions sit behind a
    # place that never receives a token.
    text = (
        ".inputs a\n.outputs y d\n.graph\n"
        "a+ y+\ny+ a-\na- y-\ny- a+\n"
        "y- pd\npd d+\nd+ pd2\npd2 d-\nd- pd3\npd3 d+\n"
        ".marking { <y-,a+> }\n"
    )
    # d+ needs pd marked; pd is fed by y- so d does fire... make it dead:
    text = (
        ".inputs a\n.outputs y d\n.graph\n"
        "a+ y+\ny+ a-\na- y-\ny- a+\n"
        "pd d+\nd+ pd2\npd2 d-\nd- pd\n"
        ".marking { <y-,a+> }\n"
    )
    stg = parse_stg(text)
    sg = build_state_graph(parse_stg(text + ".initial a=0 y=0 d=0\n"))
    assert check_dead_signals(sg) == ["d"]
