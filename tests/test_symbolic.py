"""Symbolic (BDD) traversal vs the explicit machinery — exact agreement."""

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.sgraph.cssg import build_cssg
from repro.sgraph.explore import settle_report
from repro.sgraph.symbolic import SymbolicTcsg


def explicit_tcsg_reachable(circuit, reset):
    """All states reachable in test mode (R_I union R_delta), explicitly."""
    seen = {reset}
    stack = [reset]
    m = circuit.n_inputs
    while stack:
        s = stack.pop()
        if circuit.is_stable(s):
            cur = circuit.input_pattern(s)
            for pattern in range(1 << m):
                if pattern == cur:
                    continue
                t = circuit.apply_input_pattern(s, pattern)
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        for gate in circuit.excited_gates(s):
            t = circuit.switch(s, gate)
            if t not in seen:
                seen.add(t)
                stack.append(t)
    return seen


def test_gate_functions_compile(celem):
    sym = SymbolicTcsg(celem)
    c = next(g for g in celem.gates if g.name == "c")
    for state in range(1 << celem.n_signals):
        assignment = [(state >> i) & 1 for i in range(celem.n_signals)]
        assert sym.mgr.eval(sym.gate_fn[c.index], assignment) == celem.gate_eval(
            c, state
        )


def test_stable_set_matches_enumeration(celem):
    sym = SymbolicTcsg(celem)
    explicit = set(celem.enumerate_stable_states())
    symbolic = set(sym.enumerate_states(sym.stable))
    assert symbolic == explicit
    assert sym.count_states(sym.stable) == len(explicit)


def test_state_bdd_roundtrip(celem):
    sym = SymbolicTcsg(celem)
    reset = celem.require_reset()
    f = sym.state_bdd(reset)
    assert sym.count_states(f) == 1
    assert next(sym.enumerate_states(f)) == reset


def test_reachable_matches_explicit(celem):
    sym = SymbolicTcsg(celem)
    symbolic = set(sym.enumerate_states(sym.reachable()))
    explicit = explicit_tcsg_reachable(celem, celem.require_reset())
    assert symbolic == explicit


def test_k_step_outcome_matches_settle_report(celem):
    sym = SymbolicTcsg(celem)
    k = celem.k
    for s in celem.enumerate_stable_states():
        for pattern in range(1 << celem.n_inputs):
            if pattern == celem.input_pattern(s):
                continue
            started = celem.apply_input_pattern(s, pattern)
            report = settle_report(celem, started)
            valid, succ = sym.k_step_outcome(s, pattern, k)
            assert valid == report.valid(k)
            if valid:
                assert succ == report.unique_stable


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_symbolic_cssg_equals_explicit_on_all_table1_benchmarks(name):
    """The acceptance bar: result-identical (states, edges, reset) to the
    explicit exact builder on the whole Table-1 corpus."""
    circuit = load_benchmark(name, "complex")
    explicit = build_cssg(circuit, method="exact")
    symbolic = build_cssg(circuit, method="symbolic")
    assert symbolic.reset == explicit.reset
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges
    assert symbolic.k == explicit.k


def test_symbolic_method_fills_kernel_stats():
    circuit = load_benchmark("dff", "complex")
    cssg = build_cssg(circuit, method="symbolic")
    stats = cssg.stats
    assert cssg.method == "symbolic"
    assert stats.n_tcsg_states >= cssg.n_states  # TCSG ⊇ CSSG nodes
    assert stats.peak_bdd_nodes > 0
    assert stats.n_image_iterations > 0
    assert stats.n_vectors_tried >= stats.n_valid > 0


def test_symbolic_respects_max_input_changes():
    circuit = load_benchmark("dff", "complex")
    explicit = build_cssg(circuit, method="exact", max_input_changes=1)
    symbolic = build_cssg(circuit, method="symbolic", max_input_changes=1)
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges
    full = build_cssg(circuit, method="symbolic")
    assert symbolic.n_edges <= full.n_edges


def test_symbolic_cssg_equals_explicit_on_celem(celem):
    explicit = build_cssg(celem, method="exact")
    symbolic = SymbolicTcsg(celem).build_cssg()
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges


def test_symbolic_cssg_prunes_oscillation(oscillator):
    symbolic = SymbolicTcsg(oscillator).build_cssg()
    assert symbolic.valid_patterns(symbolic.reset) == {}


def test_symbolic_cssg_prunes_nonconfluence(race):
    symbolic = SymbolicTcsg(race).build_cssg()
    explicit = build_cssg(race, method="exact")
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges
    # The racy vector AB=10 from reset must be absent.
    assert 0b01 not in symbolic.valid_patterns(symbolic.reset)
