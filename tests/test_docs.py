"""The documentation's examples must run: doctest over docs/ + README.

Every ``>>>`` snippet in the markdown guides and the README library
example executes against the real package, so the docs cannot rot —
CI additionally runs ``python -m doctest`` on the same files (the
``docs`` job), and this tier-1 copy catches breakage locally first.
"""

import doctest
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/fault-models.md",
    "docs/formats.md",
    "docs/fuzzing.md",
    "docs/incremental.md",
    "docs/observability.md",
    "docs/serving.md",
]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_examples_execute(relpath):
    path = REPO / relpath
    assert path.exists(), f"{relpath} missing — update DOC_FILES"
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{relpath}: {results.failed} doctest failures"


def test_docs_are_linked_from_readme():
    readme = (REPO / "README.md").read_text()
    for relpath in DOC_FILES[1:]:
        assert relpath in readme, f"README does not link {relpath}"
