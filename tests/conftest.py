"""Shared fixtures: small well-understood circuits used across the suite."""

import pytest

from repro.circuit.parser import parse_netlist

CELEM_NET = """
.model celem
.inputs A B
.gate a BUF A
.gate b BUF B
.gate c CELEM a b
.outputs c
.reset A=0 B=0 a=0 b=0 c=0
"""

OSCILLATOR_NET = """
.model osc
.inputs A
.gate a BUF A
.expr c = ~(a & d)
.gate d BUF c
.outputs d
.reset A=0 a=0 c=1 d=1
"""

RACE_NET = """
.model race
.inputs A B
.gate a BUF A
.gate b BUF B
.gate c AND2 a b
.expr y = c | (y & a)
.outputs y
.reset A=0 B=1 a=0 b=1 c=0 y=0
"""

HANDSHAKE_G = """
.model hs
.inputs ri
.outputs ro ai
.graph
ri+ ro+
ro+ ai+
ai+ ri-
ri- ro-
ro- ai-
ai- ri+
.marking { <ai-,ri+> }
.end
"""


@pytest.fixture
def celem():
    """Buffered Muller C-element: confluent for joint input changes,
    racy for opposing ones."""
    return parse_netlist(CELEM_NET)


@pytest.fixture
def oscillator():
    """The figure-1(b) reconstruction: A+ starts an endless chase."""
    return parse_netlist(OSCILLATOR_NET)


@pytest.fixture
def race():
    """The figure-1(a) reconstruction: AB=10 is non-confluent."""
    return parse_netlist(RACE_NET)


@pytest.fixture
def handshake_stg():
    from repro.stg.parser import parse_stg

    return parse_stg(HANDSHAKE_G)
