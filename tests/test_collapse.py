"""Structural fault collapsing: classic rules and losslessness."""

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import Fault, input_fault_universe, output_fault_universe
from repro.circuit.parser import parse_netlist
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.core.collapse import collapse_faults, collapse_ratio


def gate_net(expr):
    return parse_netlist(
        f".model t\n.inputs A B\n.gate a BUF A\n.gate b BUF B\n"
        f".expr y = {expr}\n.outputs y\n.reset A=0 B=0 a=0 b=0 y=0\n"
    )


def test_and_inputs_sa0_collapse_with_output_sa0():
    c = gate_net("a & b")
    y, a, b = c.index("y"), c.index("a"), c.index("b")
    faults = [
        Fault("input", y, a, 0),
        Fault("input", y, b, 0),
        Fault("output", y, y, 0),
        Fault("input", y, a, 1),  # NOT equivalent to anything here
    ]
    reps, rep_of = collapse_faults(c, faults)
    assert rep_of[faults[0]] == rep_of[faults[1]] == rep_of[faults[2]]
    assert rep_of[faults[3]] == faults[3]
    assert len(reps) == 2


def test_buffer_chain_collapses():
    c = parse_netlist(
        ".model chain\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    y, a = c.index("y"), c.index("a")
    faults = [Fault("input", y, a, 1), Fault("output", y, y, 1)]
    reps, rep_of = collapse_faults(c, faults)
    assert len(reps) == 1
    assert rep_of[faults[0]] == rep_of[faults[1]]


def test_inverter_polarity():
    c = parse_netlist(
        ".model inv\n.inputs A\n.gate a BUF A\n.gate y INV a\n"
        ".outputs y\n.reset A=0 a=0 y=1\n"
    )
    y, a = c.index("y"), c.index("a")
    # input SA0 == output SA1; input SA1 == output SA0.
    faults = [
        Fault("input", y, a, 0),
        Fault("output", y, y, 1),
        Fault("input", y, a, 1),
        Fault("output", y, y, 0),
    ]
    reps, rep_of = collapse_faults(c, faults)
    assert rep_of[faults[0]] == rep_of[faults[1]]
    assert rep_of[faults[2]] == rep_of[faults[3]]
    assert rep_of[faults[0]] != rep_of[faults[2]]
    assert len(reps) == 2


def test_different_gates_never_merge(celem):
    faults = output_fault_universe(celem)
    _, rep_of = collapse_faults(celem, faults)
    for fault, rep in rep_of.items():
        assert rep.gate == fault.gate


@pytest.mark.parametrize("name", ["ebergen", "mmu", "sbuf-send-ctl"])
def test_collapse_is_lossless_in_the_engine(name):
    circuit = load_benchmark(name, "complex")
    plain = AtpgEngine(circuit, AtpgOptions(seed=3)).run()
    collapsed = AtpgEngine(circuit, AtpgOptions(seed=3, collapse=True)).run()
    assert collapsed.n_total == plain.n_total
    assert collapsed.n_covered == plain.n_covered
    # Every fault gets a status after class expansion.
    assert set(collapsed.statuses) == set(collapsed.faults)
    for fault in collapsed.faults:
        assert (collapsed.statuses[fault].status == "detected") == (
            plain.statuses[fault].status == "detected"
        )


def test_collapse_ratio():
    assert collapse_ratio(10, 5) == 0.5
    assert collapse_ratio(0, 0) == 0.0


def test_mixed_universe_collapse(celem):
    faults = input_fault_universe(celem) + output_fault_universe(celem)
    reps, rep_of = collapse_faults(celem, faults)
    assert len(reps) < len(faults)  # buffers guarantee merges
    # Representatives map to themselves.
    for rep in reps:
        assert rep_of[rep] == rep
