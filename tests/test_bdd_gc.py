"""Garbage collection, roots, checkpoints and in-place sifting."""

import pytest

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError

NV = 6


def table(mgr, f):
    return [mgr.eval(f, [(m >> i) & 1 for i in range(NV)]) for m in range(1 << NV)]


def blocked_function(mgr):
    """(x0<->x3)&(x1<->x4)&(x2<->x5): large under the identity order."""
    return mgr.and_all(mgr.apply_iff(mgr.var(i), mgr.var(i + 3)) for i in range(3))


def test_collect_frees_garbage_and_keeps_roots():
    mgr = BddManager(NV)
    keep = blocked_function(mgr)
    reference = table(mgr, keep)
    for i in range(NV - 1):  # garbage nobody roots
        mgr.apply_xor(mgr.var(i), mgr.var(i + 1))
    before = mgr.n_nodes
    mgr.add_root(keep)
    freed = mgr.collect()
    assert freed > 0
    assert mgr.n_nodes < before  # node count shrank after collection
    assert mgr.n_nodes == mgr.size(keep) + 1  # live nodes + terminal
    assert table(mgr, keep) == reference
    assert mgr.stats.n_gc_passes == 1


def test_collect_accepts_transient_roots():
    mgr = BddManager(NV)
    f = mgr.apply_and(mgr.var(0), mgr.var(1))
    reference = table(mgr, f)
    mgr.collect(roots=[f])  # not registered, passed explicitly
    assert table(mgr, f) == reference
    assert mgr.n_nodes == mgr.size(f) + 1


def test_collect_invalidates_operation_cache():
    mgr = BddManager(NV)
    f = mgr.apply_and(mgr.var(0), mgr.var(1))
    assert mgr._cache  # the apply populated it
    mgr.add_root(f)
    mgr.collect()
    assert not mgr._cache  # freed ids may be re-used: cache must go
    # Re-running ops after the collect must still be correct.
    g = mgr.apply_and(mgr.var(0), mgr.var(1))
    assert g == f


def test_freed_slots_are_reused():
    mgr = BddManager(NV)
    mgr.add_root(mgr.apply_or(mgr.var(0), mgr.var(1)))
    for i in range(NV - 1):
        mgr.apply_xor(mgr.var(i), mgr.var(i + 1))
    slots_before = len(mgr._var)
    mgr.collect()
    # New allocations must fill the freed slots, not grow the arrays.
    mgr.apply_xor(mgr.var(2), mgr.var(3))
    assert len(mgr._var) == slots_before


def test_root_registration_is_counted():
    mgr = BddManager(2)
    f = mgr.apply_and(mgr.var(0), mgr.var(1))
    mgr.add_root(f)
    mgr.add_root(f)
    mgr.remove_root(f)
    mgr.collect()
    assert mgr.n_nodes == mgr.size(f) + 1  # still protected
    mgr.remove_root(f)
    with pytest.raises(BddError):
        mgr.remove_root(f)


def test_checkpoint_auto_gc_keeps_live_nodes_bounded():
    mgr = BddManager(NV, auto_gc_nodes=48)
    keep = mgr.add_root(blocked_function(mgr))
    reference = table(mgr, keep)
    peak_live = 0
    for round_ in range(40):
        # A multi-node transient per round that immediately becomes
        # garbage (the offset varies so the unique table can't reuse it).
        offset = round_ % (NV - 1) + 1
        mgr.and_all(
            mgr.apply_xor(mgr.var(i), mgr.var((i + offset) % NV))
            for i in range(NV)
        )
        mgr.checkpoint()
        peak_live = max(peak_live, mgr.n_nodes)
    assert mgr.stats.n_gc_passes >= 2
    # Bounded: the threshold plus one round of garbage, not 40 rounds.
    assert peak_live <= 2 * 48
    assert table(mgr, keep) == reference


def test_checkpoint_auto_reorder_sifts_in_place():
    mgr = BddManager(NV, auto_reorder_nodes=8)
    f = mgr.add_root(blocked_function(mgr))
    reference = table(mgr, f)
    big = mgr.size(f)
    mgr.checkpoint()  # node count is past the threshold: sift runs
    assert mgr.stats.n_reorders == 1
    assert mgr.size(f) < big  # the classic function shrinks when paired
    assert table(mgr, f) == reference  # same handle, same function
    assert mgr.order() != list(range(NV))


def test_sift_preserves_multiple_roots():
    mgr = BddManager(NV)
    f = mgr.add_root(blocked_function(mgr))
    g = mgr.add_root(mgr.apply_or(mgr.var(0), mgr.apply_and(mgr.var(4), mgr.var(2))))
    tf, tg = table(mgr, f), table(mgr, g)
    mgr.sift()
    assert table(mgr, f) == tf
    assert table(mgr, g) == tg
    # The manager stays fully usable: canonicity across the new order.
    assert mgr.apply_and(f, f) == f
    assert mgr.apply_or(g, FALSE) == g
    h = mgr.apply_and(f, g)
    assert table(mgr, h) == [a & b for a, b in zip(tf, tg)]


def test_sift_on_fully_packed_store():
    """Regression: when every slot is live (empty free list), sifting's
    exploratory swaps must be able to append fresh node slots — the
    scaffolding used to be sized once and crashed with IndexError."""
    mgr = BddManager(NV)
    f = mgr.add_root(blocked_function(mgr))
    reference = table(mgr, f)
    mgr.collect()
    cubes = []
    i = 0
    while mgr._free:  # consume every freed slot with live cubes
        cube = mgr.cube({v: (i >> v) & 1 for v in range(NV)})
        cubes.append((cube, i))
        mgr.add_root(cube)
        i += 1
    assert not mgr._free
    mgr.sift()
    assert table(mgr, f) == reference
    for cube, bits in cubes:
        assert mgr.eval(cube, [(bits >> v) & 1 for v in range(NV)]) == 1


def test_sift_reduces_blocked_function():
    mgr = BddManager(NV)
    f = mgr.add_root(blocked_function(mgr))
    before = mgr.size(f)
    after_live = mgr.sift()
    assert mgr.size(f) < before
    assert after_live == mgr.n_nodes


def test_gc_stress_interleaved_with_ops():
    """Alternating garbage production, collections and new structure:
    node counts shrink at every collect and results stay exact."""
    mgr = BddManager(NV)
    acc = mgr.add_root(TRUE)
    for i in range(NV):
        mgr.remove_root(acc)
        acc = mgr.add_root(mgr.apply_and(acc, mgr.apply_or(mgr.var(i), mgr.nvar((i + 1) % NV))))
        for j in range(NV - 1):  # garbage storm
            mgr.apply_xor(mgr.var(j), mgr.var(j + 1))
        before = mgr.n_nodes
        mgr.collect()
        assert mgr.n_nodes <= before
        assert mgr.n_nodes == mgr.size(acc) + 1
    expected = [
        int(all((m >> i) & 1 or not (m >> ((i + 1) % NV)) & 1 for i in range(NV)))
        for m in range(1 << NV)
    ]
    assert table(mgr, acc) == expected


def test_complement_edges_share_nodes():
    mgr = BddManager(4)
    f = mgr.apply_and(mgr.var(0), mgr.var(1))
    nf = mgr.apply_not(f)
    assert nf == (f ^ 1)  # O(1) complement
    assert mgr.apply_not(nf) == f
    # f and ~f share every node: the complement allocates nothing.
    before = mgr.n_nodes
    mgr.apply_not(f)
    assert mgr.n_nodes == before
    assert mgr.size(f) == mgr.size(nf)


def test_cube_matches_and_all():
    mgr = BddManager(5)
    assignment = {0: 1, 2: 0, 4: 1}
    direct = mgr.cube(assignment)
    via_ops = mgr.and_all(
        mgr.var(v) if bit else mgr.nvar(v) for v, bit in assignment.items()
    )
    assert direct == via_ops


def test_flip_var_is_substitution():
    mgr = BddManager(3)
    f = mgr.ite(mgr.var(1), mgr.var(0), mgr.var(2))
    flipped = mgr.flip_var(f, 1)
    assert flipped == mgr.ite(mgr.nvar(1), mgr.var(0), mgr.var(2))
    assert mgr.flip_var(flipped, 1) == f
    assert mgr.flip_var(f, 0) == mgr.ite(mgr.var(1), mgr.nvar(0), mgr.var(2))
