"""Concurrency and maintenance guarantees of the result store.

The contention test is the serving scenario: several *processes*
hammer the same content key (writers re-putting, readers getting) the
way parallel ``repro-serve`` workers and campaigns sharing one cache
directory do.  The store promises last-write-wins with no torn reads —
every ``get`` observes either a miss or one writer's complete payload,
never a mix.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time

from repro.campaign.store import ResultStore

KEY = "ab" * 32


def _payload(writer_id: int, nonce: int) -> dict:
    """A payload whose integrity is self-checking: ``digest`` hashes
    the body, so any cross-writer mixing or truncation is detectable."""
    body = {"writer": writer_id, "nonce": nonce, "pad": "x" * 2048}
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()
    ).hexdigest()
    return {"body": body, "digest": digest}


def _intact(doc: dict) -> bool:
    return doc["digest"] == hashlib.sha256(
        json.dumps(doc["body"], sort_keys=True).encode()
    ).hexdigest()


def _writer(root, writer_id, n_rounds, barrier):
    store = ResultStore(root)
    barrier.wait()
    for nonce in range(n_rounds):
        store.put(KEY, _payload(writer_id, nonce))


def _reader(root, n_rounds, barrier, bad_counter):
    store = ResultStore(root)
    barrier.wait()
    for _ in range(n_rounds):
        doc = store.get(KEY)
        if doc is not None and not _intact(doc):
            with bad_counter.get_lock():
                bad_counter.value += 1


def test_concurrent_same_key_writers_never_tear(tmp_path):
    n_writers, n_readers, n_rounds = 3, 2, 40
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(n_writers + n_readers)
    bad = ctx.Value("i", 0)
    procs = [
        ctx.Process(target=_writer, args=(tmp_path, wid, n_rounds, barrier))
        for wid in range(n_writers)
    ] + [
        ctx.Process(target=_reader, args=(tmp_path, n_rounds, barrier, bad))
        for _ in range(n_readers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert bad.value == 0, f"{bad.value} torn reads observed"
    # Last write wins: the final entry is some writer's complete payload.
    store = ResultStore(tmp_path)
    final = store.get(KEY)
    assert final is not None and _intact(final)
    assert final["body"]["nonce"] == n_rounds - 1
    # No temp-file litter survived the stampede.
    assert not list((tmp_path / "results").glob("*/.*.tmp"))


# -- maintenance (repro-cache backing) ---------------------------------------


def test_entries_ordered_oldest_first(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(3):
        store.put(f"{i:02d}" + "cd" * 31, {"i": i})
    paths = {key: store.path_for(key) for key in store.iter_keys()}
    now = time.time()
    for i, key in enumerate(sorted(paths)):
        os.utime(paths[key], (now - (3 - i) * 1000,) * 2)
    entries = store.entries()
    assert [e[0][:2] for e in entries] == ["00", "01", "02"]
    assert all(size > 0 for _, _, size, _ in entries)


def test_prune_by_age_and_size(tmp_path):
    store = ResultStore(tmp_path)
    keys = [f"{i:02d}" + "ef" * 31 for i in range(4)]
    for i, key in enumerate(keys):
        store.put(key, {"i": i, "pad": "y" * 500})
    now = time.time()
    # keys[0] is ancient; the rest are spaced a minute apart.
    os.utime(store.path_for(keys[0]), (now - 10 * 86400,) * 2)
    for i, key in enumerate(keys[1:], start=1):
        os.utime(store.path_for(key), (now - (4 - i) * 60,) * 2)

    n, freed = store.prune(max_age_seconds=86400)
    assert n == 1 and freed > 0
    assert not store.has(keys[0]) and all(store.has(k) for k in keys[1:])

    # Size bound evicts oldest-first until the store fits.
    one_entry = store.entries()[0][2]
    n, freed = store.prune(max_total_bytes=one_entry)
    assert n == 2
    assert [e[0] for e in store.entries()] == [keys[3]]


def test_prune_reaps_orphan_tmp_files(tmp_path):
    store = ResultStore(tmp_path)
    store.put(KEY, {"ok": True})
    orphan = store.path_for(KEY).parent / ".deadbeef-stale.tmp"
    orphan.write_text("partial garbage")
    os.utime(orphan, (time.time() - 7200,) * 2)
    fresh = store.path_for(KEY).parent / ".cafecafe-live.tmp"
    fresh.write_text("in-flight write")
    n, _freed = store.prune()
    assert n == 1
    assert not orphan.exists()
    assert fresh.exists()  # recent tmp: presumed in-flight, spared
    assert store.get(KEY) == {"ok": True}


def test_stats_counts_hits_and_misses_across_instances(tmp_path):
    store = ResultStore(tmp_path, track_stats=True)
    store.put(KEY, {"v": 1})
    store.get(KEY)
    store.get("ff" * 32)
    store.get(KEY)
    # A second instance (another process in real life) reads the same log.
    doc = ResultStore(tmp_path).stats()
    assert doc["n_entries"] == 1
    assert doc["lookups"] == {"hits": 2, "misses": 1, "hit_rate": 0.6667}


def test_repro_cache_cli_smoke(tmp_path, capsys):
    from repro.cli import cache_main

    store = ResultStore(tmp_path)
    for i in range(2):
        store.put(f"{i:02d}" + "aa" * 31, {"i": i})

    assert cache_main(["list", "--cache-dir", str(tmp_path)]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 2

    assert cache_main(["stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["n_entries"] == 2

    assert cache_main(
        ["prune", "--cache-dir", str(tmp_path), "--max-size-mb", "0",
         "--dry-run"]
    ) == 0
    assert "would remove 2" in capsys.readouterr().out
    assert len(store) == 2  # dry run removed nothing

    assert cache_main(["prune", "--cache-dir", str(tmp_path)]) == 2  # no bounds
    assert cache_main(["clear", "--cache-dir", str(tmp_path)]) == 0
    assert len(store) == 0
