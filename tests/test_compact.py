"""Static test-set compaction: coverage-preserving, smaller."""

import pytest

from repro.benchmarks_data import load_benchmark
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.core.compact import compact_test_set
from repro.core.verify import verify_test_set


@pytest.mark.parametrize("name", ["sbuf-send-ctl", "master-read", "mmu"])
def test_compaction_preserves_guaranteed_coverage(name):
    circuit = load_benchmark(name, "complex")
    # A wasteful budget to give compaction something to remove.
    result = AtpgEngine(
        circuit, AtpgOptions(seed=2, random_walks=12, walk_len=24)
    ).run()
    before = verify_test_set(result.cssg, result.tests.tests, result.faults)
    compacted, stats = compact_test_set(
        result.cssg, result.tests.tests, result.faults
    )
    after = verify_test_set(result.cssg, compacted.tests, result.faults)
    assert after.detected >= before.detected
    assert stats["n_after"] <= stats["n_before"]
    assert stats["vectors_after"] <= stats["vectors_before"]
    assert stats["n_essential"] <= stats["n_after"]


def test_compaction_actually_removes_redundancy(celem):
    # Duplicate every generated test: the copies are pure redundancy and
    # compaction must throw at least that much away.
    result = AtpgEngine(celem, AtpgOptions(seed=0)).run()
    doubled = result.tests.tests + [
        type(t)(t.patterns, list(t.faults), t.source) for t in result.tests.tests
    ]
    compacted, stats = compact_test_set(result.cssg, doubled, result.faults)
    assert stats["n_after"] <= len(result.tests.tests)
    assert stats["vectors_after"] < stats["vectors_before"]


def test_compacted_tests_carry_their_detections(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run()
    compacted, _ = compact_test_set(result.cssg, result.tests.tests, result.faults)
    confirm = verify_test_set(result.cssg, compacted.tests, result.faults)
    for test, hits in zip(compacted.tests, confirm.per_test):
        assert hits <= set(test.faults)


def test_empty_input(celem):
    from repro.sgraph.cssg import build_cssg

    cssg = build_cssg(celem)
    compacted, stats = compact_test_set(cssg, [], [])
    assert len(compacted) == 0
    assert stats["n_before"] == stats["n_after"] == 0
