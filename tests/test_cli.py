"""The repro-atpg command line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "ebergen" in out and "vbe10b" in out


def test_run_bundled_benchmark(capsys):
    assert main(["hazard", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "hazard-complex" in out
    assert "covered" in out


def test_run_two_level_output_model(capsys):
    assert main(["hazard", "--style", "two-level", "--model", "output"]) == 0
    assert "two-level" in capsys.readouterr().out


def test_show_tests_and_undetected(capsys):
    assert main(["ebergen", "--show-tests", "--show-undetected"]) == 0
    out = capsys.readouterr().out
    assert "test 0" in out
    assert "undetected" in out  # ebergen has two untestable feedback pins


def test_run_netlist_file(tmp_path, capsys):
    net = tmp_path / "toy.net"
    net.write_text(
        ".model toy\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    assert main([str(net)]) == 0
    assert "toy" in capsys.readouterr().out


def test_missing_argument(capsys):
    assert main([]) == 2
    assert "error" in capsys.readouterr().err


def test_nonexistent_path(capsys):
    assert main(["no/such/file.net"]) == 2
    assert "neither" in capsys.readouterr().err


def test_library_error_is_reported(tmp_path, capsys):
    net = tmp_path / "bad.net"
    net.write_text(".inputs A\n.gate g FROB A\n")
    assert main([str(net)]) == 1
    assert "error" in capsys.readouterr().err


def test_no_random_flag(capsys):
    assert main(["hazard", "--no-random"]) == 0
    out = capsys.readouterr().out
    assert "rnd 0," in out
