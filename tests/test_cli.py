"""The repro-atpg command line interface."""

import json

from repro.cli import main
from repro.core.atpg import RESULT_SCHEMA_VERSION


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "ebergen" in out and "vbe10b" in out


def test_run_bundled_benchmark(capsys):
    assert main(["hazard", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "hazard-complex" in out
    assert "covered" in out


def test_run_two_level_output_model(capsys):
    assert main(["hazard", "--style", "two-level", "--model", "output"]) == 0
    assert "two-level" in capsys.readouterr().out


def test_show_tests_and_undetected(capsys):
    assert main(["ebergen", "--show-tests", "--show-undetected"]) == 0
    out = capsys.readouterr().out
    assert "test 0" in out
    assert "undetected" in out  # ebergen has two untestable feedback pins


def test_run_netlist_file(tmp_path, capsys):
    net = tmp_path / "toy.net"
    net.write_text(
        ".model toy\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    assert main([str(net)]) == 0
    assert "toy" in capsys.readouterr().out


def test_missing_argument(capsys):
    assert main([]) == 2
    assert "error" in capsys.readouterr().err


def test_nonexistent_path(capsys):
    assert main(["no/such/file.net"]) == 2
    assert "neither" in capsys.readouterr().err


def test_library_error_is_reported(tmp_path, capsys):
    net = tmp_path / "bad.net"
    net.write_text(".inputs A\n.gate g FROB A\n")
    assert main([str(net)]) == 1
    assert "error" in capsys.readouterr().err


def test_no_random_flag(capsys):
    assert main(["hazard", "--no-random"]) == 0
    out = capsys.readouterr().out
    assert "rnd 0," in out


def test_unknown_benchmark_name_is_a_clean_error(capsys):
    """A bad bare name exits 1 with a message, not a traceback."""
    assert main(["ebergenX"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown benchmark" in err and "ebergen" in err
    assert "Traceback" not in err


def test_json_flag_emits_one_result_object(capsys):
    assert main(["dff", "--json", "--seed", "4"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["schema_version"] == RESULT_SCHEMA_VERSION
    assert data["circuit"]["name"] == "dff-complex"
    assert data["options"]["seed"] == 4
    assert len(data["statuses"]) == len(data["faults"]) > 0


def test_cssg_method_hybrid_is_accepted(capsys):
    """Regression: 'hybrid' is a supported AtpgOptions.cssg_method but
    the CLI choices used to reject it."""
    assert main(["dff", "--cssg-method", "hybrid"]) == 0
    assert "covered" in capsys.readouterr().out


def test_cssg_method_symbolic_end_to_end_parity(capsys):
    """`--cssg-method symbolic` runs the whole flow and produces the
    same fault coverage (and per-fault verdicts) as the exact method."""
    results = {}
    for method in ("exact", "symbolic"):
        assert main(["dff", "--json", "--seed", "3",
                     "--cssg-method", method]) == 0
        results[method] = json.loads(capsys.readouterr().out)
    exact, symbolic = results["exact"], results["symbolic"]
    assert symbolic["cssg"]["method"] == "symbolic"
    assert symbolic["cssg"]["n_states"] == exact["cssg"]["n_states"]
    assert symbolic["cssg"]["n_edges"] == exact["cssg"]["n_edges"]
    assert symbolic["n_covered"] == exact["n_covered"]
    assert symbolic["n_total"] == exact["n_total"]
    strip = {"options", "cssg", "cpu_seconds"}
    assert {k: v for k, v in symbolic.items() if k not in strip} == {
        k: v for k, v in exact.items() if k not in strip
    }


def test_library_knob_flags(capsys):
    assert main(
        ["ebergen", "--collapse", "--compact", "--faulty-semantics", "ternary",
         "--json"]
    ) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["options"]["collapse"] is True
    assert data["options"]["compact"] is True
    assert data["options"]["faulty_semantics"] == "ternary"


def test_deadline_flag_yields_partial_result(capsys):
    assert main(["ebergen", "--deadline", "0", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["options"]["deadline_seconds"] == 0.0
    assert data["n_aborted"] == data["n_total"] > 0
    assert all(s["reason"] == "budget" for s in data["statuses"])


def test_show_undetected_includes_abort_reason(capsys):
    assert main(["dff", "--deadline", "0", "--show-undetected"]) == 0
    out = capsys.readouterr().out
    assert "undetected [aborted: budget]" in out


def test_progress_flag_renders_live_line(capsys):
    assert main(["dff", "--progress"]) == 0
    captured = capsys.readouterr()
    assert "covered=" in captured.err
    assert captured.err.endswith("\n")
    assert "covered" in captured.out  # the summary still prints


def test_trace_flag_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["dff", "--trace", str(path)]) == 0
    docs = [json.loads(line) for line in path.read_text().splitlines()]
    assert docs[0]["event"] == "StageStarted"
    events = {d["event"] for d in docs}
    assert {"StageFinished", "FaultClassified", "TestAdded"} <= events
