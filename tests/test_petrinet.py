"""Petri-net token-game semantics and structural validation."""

import pytest

from repro.errors import SafenessError, StgError
from repro.stg.petrinet import StgBuilder, parse_transition_label


def test_parse_transition_label():
    assert parse_transition_label("a+") == ("a", 1)
    assert parse_transition_label("foo-/2") == ("foo", -1)
    with pytest.raises(StgError):
        parse_transition_label("a")
    with pytest.raises(StgError):
        parse_transition_label("a*/1")


def build_cycle():
    b = StgBuilder("cycle")
    b.add_signal("a", "input")
    b.add_signal("z", "output")
    for src, dst in [("a+", "z+"), ("z+", "a-"), ("a-", "z-"), ("z-", "a+")]:
        b.add_arc(src, dst)
    b.set_marking(["<z-,a+>"])
    return b.build()


def test_enabled_and_fire():
    stg = build_cycle()
    m0 = stg.initial_marking
    enabled = stg.enabled(m0)
    assert [t.label for t in enabled] == ["a+"]
    m1 = stg.fire(m0, enabled[0])
    assert [t.label for t in stg.enabled(m1)] == ["z+"]


def test_fire_disabled_rejected():
    stg = build_cycle()
    z_plus = next(t for t in stg.transitions if t.label == "z+")
    with pytest.raises(StgError):
        stg.fire(stg.initial_marking, z_plus)


def test_safeness_violation_detected():
    b = StgBuilder("unsafe")
    b.add_signal("a", "input")
    b.add_signal("z", "output")
    # Two producers can both deposit into p before z+ consumes: unsafe.
    b.add_arc("a+", "p")
    b.add_arc("a-", "p")
    b.add_arc("p", "z+")
    b.add_arc("a+", "a-")
    b.add_arc("z+", "z-")
    b.add_arc("z-", "a+")
    b.set_marking(["<z-,a+>"])
    stg = b.build()
    m = stg.initial_marking
    m = stg.fire(m, next(t for t in stg.transitions if t.label == "a+"))
    with pytest.raises(SafenessError):
        stg.fire(m, next(t for t in stg.transitions if t.label == "a-"))


def test_transition_without_preset_rejected():
    b = StgBuilder("floating")
    b.add_signal("a", "input")
    b.add_arc("a+", "p")  # a+ has no input place at all
    b.set_marking(["p"])
    with pytest.raises(StgError, match="no input places"):
        b.build()


def test_undeclared_signal_rejected():
    b = StgBuilder("bad")
    b.add_signal("a", "input")
    b.add_arc("a+", "q+")
    b.add_arc("q+", "a+")
    b.set_marking([])
    with pytest.raises(StgError, match="undeclared"):
        b.build()


def test_marking_unknown_place_rejected():
    b = StgBuilder("bad")
    b.add_signal("a", "input")
    b.add_arc("a+", "a-")
    b.add_arc("a-", "a+")
    b.set_marking(["nowhere"])
    with pytest.raises(StgError, match="unknown place"):
        b.build()


def test_invalid_signal_names_rejected():
    b = StgBuilder("bad")
    with pytest.raises(StgError):
        b.add_signal("a b", "input")
    with pytest.raises(StgError):
        b.add_signal("a", "wibble")


def test_duplicate_signals_rejected():
    # Caught at declaration time so the parser can report the line.
    b = StgBuilder("dup")
    b.add_signal("a", "input")
    with pytest.raises(StgError, match="duplicate"):
        b.add_signal("a", "output")
    with pytest.raises(StgError, match="duplicate"):
        b.add_signal("a", "input")


def test_transitions_of():
    stg = build_cycle()
    assert [t.label for t in stg.transitions_of("z")] == ["z+", "z-"]
