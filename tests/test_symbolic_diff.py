"""Differential harness: explicit vs symbolic CSSG on random netlists.

The 23 bundled benchmarks are well-behaved SI circuits; this harness
feeds both builders seeded *random* feedback netlists — racy, oscillating
and non-confluent behaviour included — and asserts exact agreement of
states, edges and reset.  A second battery squeezes the symbolic build
through a tiny GC threshold to prove collection never changes results.
"""

import random

import pytest

from repro.circuit.netlist import Circuit
from repro.sgraph.cssg import build_cssg
from repro.sgraph.symbolic import SymbolicTcsg

N_SEEDS = 40
_OPS = ("&", "|", "^")


def _random_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or (len(names) > 1 and rng.random() < 0.35):
        name = rng.choice(names)
        return f"~{name}" if rng.random() < 0.4 else name
    a = _random_expr(rng, names, depth - 1)
    b = _random_expr(rng, names, depth - 1)
    return f"({a} {rng.choice(_OPS)} {b})"


def _build(rng: random.Random, reset_bits=None):
    """One random buffered feedback netlist; reset optionally forced."""
    n_inputs = rng.randint(1, 3)
    n_gates = rng.randint(2, 4)
    c = Circuit(f"rand-{rng.getstate()[1][0] & 0xffff:x}")
    sigs = []
    for i in range(n_inputs):
        c.add_input(f"I{i}")
    for i in range(n_inputs):
        c.add_gate(f"b{i}", gtype="BUF", inputs=[f"I{i}"])
        sigs.append(f"b{i}")
    for j in range(n_gates):
        name = f"g{j}"
        # Self- and forward-feedback allowed: racy circuits are the point.
        pool = sigs + [name]
        c.add_gate(name, expr=_random_expr(rng, pool, rng.randint(1, 3)))
        sigs.append(name)
    c.mark_output(sigs[-1])
    if reset_bits is not None:
        names = [f"I{i}" for i in range(n_inputs)] + sigs
        c.set_reset({n: (reset_bits >> i) & 1 for i, n in enumerate(names)})
    return c.finalize()


def random_circuit(seed: int):
    """A random netlist with a *stable* reset, or None for this seed."""
    probe = _build(random.Random(seed))
    stable = probe.enumerate_stable_states()
    if not stable:
        return None
    # Deterministic choice among stable states, rebuilt with that reset.
    pick = stable[random.Random(seed ^ 0x5EED).randrange(len(stable))]
    return _build(random.Random(seed), reset_bits=pick)


def _agree(circuit, **symbolic_kwargs):
    explicit = build_cssg(circuit, method="exact")
    symbolic = SymbolicTcsg(circuit, **symbolic_kwargs).build_cssg()
    assert symbolic.reset == explicit.reset
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges
    return explicit


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_netlists_explicit_equals_symbolic(seed):
    circuit = random_circuit(seed)
    if circuit is None:
        pytest.skip("no stable state for this seed")
    _agree(circuit)


def test_harness_is_not_vacuous():
    """The seed range must actually produce circuits, and some with
    non-trivial graphs — otherwise the battery above proves nothing."""
    built = [c for c in (random_circuit(s) for s in range(N_SEEDS)) if c]
    assert len(built) >= N_SEEDS // 2
    graphs = [build_cssg(c, method="exact") for c in built]
    assert any(g.n_states > 1 for g in graphs)
    assert any(g.n_edges > 2 for g in graphs)
    # ...and some pruning happened somewhere (invalid vectors exist).
    assert any(g.stats.n_valid < g.stats.n_vectors_tried for g in graphs)


@pytest.mark.parametrize("seed", [1, 3, 7, 11])
def test_symbolic_under_gc_pressure_matches_explicit(seed):
    """A tiny GC threshold forces collections mid-construction; results
    must not change and collections must actually have happened."""
    circuit = random_circuit(seed)
    if circuit is None:
        pytest.skip("no stable state for this seed")
    sym = SymbolicTcsg(circuit, auto_gc_nodes=40)
    cssg = sym.build_cssg()
    explicit = build_cssg(circuit, method="exact")
    assert cssg.states == explicit.states
    assert cssg.edges == explicit.edges
    assert cssg.stats.n_gc_passes >= 1
    # After a final collect, the live set is just the registered roots.
    before = sym.mgr.n_nodes
    sym.mgr.collect()
    assert sym.mgr.n_nodes <= before


def test_gc_pressure_on_benchmark_matches_default():
    """The largest Table-1 benchmark under a small threshold: bounded
    peak, several collections, identical graph."""
    from repro.benchmarks_data import load_benchmark

    circuit = load_benchmark("vbe10b", "complex")
    relaxed = SymbolicTcsg(circuit)
    pressured = SymbolicTcsg(circuit, auto_gc_nodes=2_000)
    a = relaxed.build_cssg()
    b = pressured.build_cssg()
    assert a.states == b.states and a.edges == b.edges
    assert b.stats.n_gc_passes > a.stats.n_gc_passes
    assert b.stats.peak_bdd_nodes <= a.stats.peak_bdd_nodes
