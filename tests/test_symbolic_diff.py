"""Differential harness: explicit vs symbolic CSSG on random netlists.

The 23 bundled benchmarks are well-behaved SI circuits; this harness
feeds both builders seeded *random* feedback netlists — racy, oscillating
and non-confluent behaviour included — and asserts exact agreement of
states, edges and reset.  A second battery squeezes the symbolic build
through a tiny GC threshold to prove collection never changes results.
A third battery mirrors one op sequence (gate functions, quantification,
relational products, renames) on the arena :class:`BddManager` and the
seed :class:`LegacyBddManager`, comparing function *semantics*
(truth vectors and model counts) — with mark-and-sweep collections and
in-place sifts fired mid-sequence on the arena side only, which must
not change any answer.
"""

import random

import pytest

from repro.bdd.legacy import LegacyBddManager
from repro.bdd.manager import BddManager
from repro.circuit.expr import OP_AND, OP_NOT, OP_OR, OP_VAR, OP_XOR
from repro.circuit.netlist import Circuit
from repro.sgraph.cssg import build_cssg
from repro.sgraph.symbolic import SymbolicTcsg

N_SEEDS = 40
_OPS = ("&", "|", "^")


def _random_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or (len(names) > 1 and rng.random() < 0.35):
        name = rng.choice(names)
        return f"~{name}" if rng.random() < 0.4 else name
    a = _random_expr(rng, names, depth - 1)
    b = _random_expr(rng, names, depth - 1)
    return f"({a} {rng.choice(_OPS)} {b})"


def _build(rng: random.Random, reset_bits=None):
    """One random buffered feedback netlist; reset optionally forced."""
    n_inputs = rng.randint(1, 3)
    n_gates = rng.randint(2, 4)
    c = Circuit(f"rand-{rng.getstate()[1][0] & 0xffff:x}")
    sigs = []
    for i in range(n_inputs):
        c.add_input(f"I{i}")
    for i in range(n_inputs):
        c.add_gate(f"b{i}", gtype="BUF", inputs=[f"I{i}"])
        sigs.append(f"b{i}")
    for j in range(n_gates):
        name = f"g{j}"
        # Self- and forward-feedback allowed: racy circuits are the point.
        pool = sigs + [name]
        c.add_gate(name, expr=_random_expr(rng, pool, rng.randint(1, 3)))
        sigs.append(name)
    c.mark_output(sigs[-1])
    if reset_bits is not None:
        names = [f"I{i}" for i in range(n_inputs)] + sigs
        c.set_reset({n: (reset_bits >> i) & 1 for i, n in enumerate(names)})
    return c.finalize()


def random_circuit(seed: int):
    """A random netlist with a *stable* reset, or None for this seed."""
    probe = _build(random.Random(seed))
    stable = probe.enumerate_stable_states()
    if not stable:
        return None
    # Deterministic choice among stable states, rebuilt with that reset.
    pick = stable[random.Random(seed ^ 0x5EED).randrange(len(stable))]
    return _build(random.Random(seed), reset_bits=pick)


def _agree(circuit, **symbolic_kwargs):
    explicit = build_cssg(circuit, method="exact")
    symbolic = SymbolicTcsg(circuit, **symbolic_kwargs).build_cssg()
    assert symbolic.reset == explicit.reset
    assert symbolic.states == explicit.states
    assert symbolic.edges == explicit.edges
    return explicit


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_netlists_explicit_equals_symbolic(seed):
    circuit = random_circuit(seed)
    if circuit is None:
        pytest.skip("no stable state for this seed")
    _agree(circuit)


def test_harness_is_not_vacuous():
    """The seed range must actually produce circuits, and some with
    non-trivial graphs — otherwise the battery above proves nothing."""
    built = [c for c in (random_circuit(s) for s in range(N_SEEDS)) if c]
    assert len(built) >= N_SEEDS // 2
    graphs = [build_cssg(c, method="exact") for c in built]
    assert any(g.n_states > 1 for g in graphs)
    assert any(g.n_edges > 2 for g in graphs)
    # ...and some pruning happened somewhere (invalid vectors exist).
    assert any(g.stats.n_valid < g.stats.n_vectors_tried for g in graphs)


@pytest.mark.parametrize("seed", [1, 3, 7, 11])
def test_symbolic_under_gc_pressure_matches_explicit(seed):
    """A tiny GC threshold forces collections mid-construction; results
    must not change and collections must actually have happened."""
    circuit = random_circuit(seed)
    if circuit is None:
        pytest.skip("no stable state for this seed")
    sym = SymbolicTcsg(circuit, auto_gc_nodes=40)
    cssg = sym.build_cssg()
    explicit = build_cssg(circuit, method="exact")
    assert cssg.states == explicit.states
    assert cssg.edges == explicit.edges
    assert cssg.stats.n_gc_passes >= 1
    # After a final collect, the live set is just the registered roots.
    before = sym.mgr.n_nodes
    sym.mgr.collect()
    assert sym.mgr.n_nodes <= before


# -- arena BddManager vs the seed LegacyBddManager -----------------------


def _compile_gate(mgr, program, cur):
    """Stack-evaluate a gate program into a BDD over current-state vars
    (identical recipe for both managers)."""
    stack = []
    for op, arg in program:
        if op == OP_VAR:
            stack.append(mgr.var(cur(arg)))
        elif op == OP_NOT:
            stack.append(mgr.apply_not(stack.pop()))
        elif op == OP_AND:
            b, a = stack.pop(), stack.pop()
            stack.append(mgr.apply_and(a, b))
        elif op == OP_OR:
            b, a = stack.pop(), stack.pop()
            stack.append(mgr.apply_or(a, b))
        elif op == OP_XOR:
            b, a = stack.pop(), stack.pop()
            stack.append(mgr.apply_xor(a, b))
        else:
            stack.append(1 if arg else 0)
    return stack[0]


def _truth_vector(mgr, f, n_signals, n_vars):
    """Bit ``s`` = f evaluated at assignment ``s`` of the current-state
    vars — a manager-independent semantic fingerprint."""
    vec = 0
    assignment = [0] * n_vars
    for s in range(1 << n_signals):
        for i in range(n_signals):
            assignment[i] = (s >> i) & 1
        vec |= mgr.eval(f, assignment) << s
    return vec


def _mirror_ops(mgr, circuit, checkpoint):
    """Run the shared op sequence, calling ``checkpoint(live_refs)``
    between steps; return the semantic fingerprints."""
    n = circuit.n_signals
    n_vars = 2 * n
    cur = lambda i: i  # noqa: E731 - trivial index maps
    nxt = lambda i: n + i  # noqa: E731
    out = []
    gate_fns = {}
    live = []
    for k, gate in enumerate(circuit.gates):
        f = _compile_gate(mgr, gate.program, cur)
        gate_fns[gate.index] = f
        live.append(f)
        out.append(_truth_vector(mgr, f, n, n_vars))
        if k == len(circuit.gates) // 2:
            checkpoint(mgr, live)  # mid-build GC + reorder (arena only)
    # The stable-set conjunction (every gate agrees with its function).
    stable = mgr.and_all(
        mgr.apply_iff(mgr.var(cur(g.index)), gate_fns[g.index])
        for g in circuit.gates
    )
    live.append(stable)
    checkpoint(mgr, live)
    out.append(_truth_vector(mgr, stable, n, n_vars))
    out.append(mgr.sat_count(stable, [cur(i) for i in range(n)]))
    # Quantification, relational product, rename round-trip.
    some_vars = [cur(i) for i in range(0, n, 2)]
    ex = mgr.exists(stable, some_vars)
    out.append(_truth_vector(mgr, ex, n, n_vars))
    for g in circuit.gates[:2]:
        ae = mgr.and_exists(stable, gate_fns[g.index], some_vars)
        out.append(_truth_vector(mgr, ae, n, n_vars))
    renamed = mgr.rename(stable, {cur(i): nxt(i) for i in range(n)})
    live.append(renamed)
    checkpoint(mgr, live)
    back = mgr.rename(renamed, {nxt(i): cur(i) for i in range(n)})
    out.append(_truth_vector(mgr, back, n, n_vars))
    out.append(int(back == stable))  # canonicity: round-trip is identity
    return out


def _arena_checkpoint(mgr, live):
    mgr.collect(live)
    mgr.sift(live)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_netlists_arena_bdd_equals_legacy(seed):
    """The arena kernel and the seed manager agree on every fingerprint
    of the mirrored op sequence, despite mid-sequence GC and sifting
    (tiny auto thresholds add further collections and reorders inside
    individual operations)."""
    circuit = random_circuit(seed)
    if circuit is None:
        pytest.skip("no stable state for this seed")
    arena = BddManager(
        2 * circuit.n_signals, auto_gc_nodes=64, auto_reorder_nodes=48
    )
    legacy = LegacyBddManager(2 * circuit.n_signals)
    got = _mirror_ops(arena, circuit, _arena_checkpoint)
    want = _mirror_ops(legacy, circuit, lambda mgr, live: None)
    assert got == want
    """The largest Table-1 benchmark under a small threshold: bounded
    peak, several collections, identical graph."""
    from repro.benchmarks_data import load_benchmark

    circuit = load_benchmark("vbe10b", "complex")
    relaxed = SymbolicTcsg(circuit)
    pressured = SymbolicTcsg(circuit, auto_gc_nodes=2_000)
    a = relaxed.build_cssg()
    b = pressured.build_cssg()
    assert a.states == b.states and a.edges == b.edges
    assert b.stats.n_gc_passes > a.stats.n_gc_passes
    assert b.stats.peak_bdd_nodes <= a.stats.peak_bdd_nodes
