"""Cross-model properties: ternary simulation vs exhaustive exploration,
and the compiled engine vs the seed reference implementation.

These are the load-bearing soundness relations of the whole approach:

* **conservativeness** — if exhaustive exploration shows non-confluence
  or a cycle, ternary simulation must report Φ (it may never claim a
  definite outcome for a racy vector);
* **agreement** — if ternary is definite, the settling graph is acyclic,
  confluent, and terminates in exactly the ternary result;
* **parity** — the compiled event-driven engine (:mod:`repro.sim.engine`)
  must be *bit-identical* to the seed's sweep implementation preserved
  in :mod:`repro.sim.legacy`: scalar ternary settling (with and without
  faults), width-1 ``FaultBatch`` machines, and the excited-gate
  enumeration that drives exact simulation.

Checked on the fixture circuits, on every bundled benchmark, and on
randomly generated netlists.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.circuit.expr import And, Const, Not, Or, Var, Xor
from repro.circuit.faults import fault_universe
from repro.circuit.netlist import Circuit
from repro.sgraph.explore import settle_report
from repro.sim import legacy, ternary
from repro.sim.batch import FaultBatch
from repro.sim.engine import compiled


def check_agreement(circuit, start_state):
    """The two analyses must relate correctly for one settling run.

    Note the asymmetry: a definite ternary verdict guarantees a unique
    stable outcome (and exploration must agree on it), but it does NOT
    guarantee acyclicity — a transient cycle whose escape is delay-forced
    (an excited gate that must eventually fire) still settles uniquely.
    Conversely non-confluence always forces Φ; Φ itself may also stem
    from wire-delay conservatism on a perfectly confluent circuit.
    """
    report = settle_report(circuit, start_state, cap=20_000)
    result = ternary.settle(
        circuit, ternary.from_binary(start_state, circuit.n_signals)
    )
    if ternary.is_definite(result):
        assert not report.truncated
        assert not report.nonconfluent, "definite ternary on a racy vector"
        assert report.stable_states == frozenset([ternary.to_binary(result)])
    if report.nonconfluent:
        assert not ternary.is_definite(result), (
            "exploration found a race but ternary was definite"
        )


def test_fixture_circuits_every_vector(celem, oscillator, race):
    for circuit in (celem, oscillator, race):
        for state in circuit.enumerate_stable_states():
            for pattern in range(1 << circuit.n_inputs):
                if pattern == circuit.input_pattern(state):
                    continue
                check_agreement(circuit, circuit.apply_input_pattern(state, pattern))


# -- random circuits -----------------------------------------------------

SIGNALS = ["a", "b", "g0", "g1", "g2"]


def random_expr(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 1))
    if choice == 0:
        return Var(draw(st.sampled_from(SIGNALS)))
    if choice == 1:
        return Const(draw(st.integers(0, 1)))
    if choice == 2:
        return Not(random_expr(draw, depth + 1))
    if choice == 3:
        return And((random_expr(draw, depth + 1), random_expr(draw, depth + 1)))
    if choice == 4:
        return Or((random_expr(draw, depth + 1), random_expr(draw, depth + 1)))
    return Xor(random_expr(draw, depth + 1), random_expr(draw, depth + 1))


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_random_circuits(data):
    circuit = Circuit("rand")
    circuit.add_input("a")
    circuit.add_input("b")
    for name in ("g0", "g1", "g2"):
        circuit.add_gate(name, expr=random_expr(data.draw))
    circuit.mark_output("g2")
    circuit.finalize()
    start = data.draw(st.integers(0, (1 << circuit.n_signals) - 1))
    check_agreement(circuit, start)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_circuits_from_stable_states(data):
    """Same property, but starting from genuine R_I successors."""
    circuit = Circuit("rand2")
    circuit.add_input("a")
    circuit.add_input("b")
    for name in ("g0", "g1", "g2"):
        circuit.add_gate(name, expr=random_expr(data.draw))
    circuit.finalize()
    stable = circuit.enumerate_stable_states()
    if not stable:
        return
    state = data.draw(st.sampled_from(stable))
    pattern = data.draw(st.integers(0, 3))
    check_agreement(circuit, circuit.apply_input_pattern(state, pattern))


# -- engine vs seed-implementation parity --------------------------------


def _fault_sample(circuit, stride=3):
    """A deterministic spread over the full input+output fault universe."""
    faults = fault_universe(circuit, "input") + fault_universe(circuit, "output")
    return faults[::stride] or faults


def _walk(circuit, n_cycles=6):
    """A deterministic input-pattern walk covering every input bit."""
    m = circuit.n_inputs
    patterns = [(0b10101 >> (i % 3)) & ((1 << m) - 1) for i in range(n_cycles)]
    patterns.extend(p ^ ((1 << m) - 1) for p in list(patterns))
    return patterns


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_engine_matches_seed_scalar_on_benchmarks(name):
    """Scalar ternary: engine == seed sweeps, fault-free and faulted,
    from reset and along a whole input walk."""
    circuit = load_benchmark(name, "complex")
    reset = circuit.require_reset()
    n = circuit.n_signals
    for fault in [None] + _fault_sample(circuit):
        ts_engine = ternary.settle_from_reset(circuit, reset, fault)
        start = reset
        if fault is not None and fault.kind == "output":
            start = (reset & ~(1 << fault.site)) | (fault.value << fault.site)
        ts_seed = legacy.settle(circuit, ternary.from_binary(start, n), fault)
        assert ts_engine == ts_seed
        for pattern in _walk(circuit):
            ts_engine = ternary.apply_pattern(circuit, ts_engine, pattern, fault)
            imask = (1 << circuit.n_inputs) - 1
            low = (ts_seed[0] & ~imask) | (~pattern & imask)
            high = (ts_seed[1] & ~imask) | (pattern & imask)
            ts_seed = legacy.settle(circuit, (low, high), fault)
            assert ts_engine == ts_seed, f"{name}: diverged on {pattern:b}"


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_width1_batch_matches_seed_on_benchmarks(name):
    """A width-1 FaultBatch must stay bit-for-bit the scalar seed
    semantics for every sampled fault."""
    circuit = load_benchmark(name, "complex")
    reset = circuit.require_reset()
    for fault in _fault_sample(circuit, stride=5):
        batch = FaultBatch(circuit, [fault])
        bstate = batch.reset_and_settle(reset)
        seed_start = reset
        if fault.kind == "output":
            seed_start = (reset & ~(1 << fault.site)) | (fault.value << fault.site)
        sstate = legacy.settle(
            circuit, ternary.from_binary(seed_start, circuit.n_signals), fault
        )
        assert batch.machine_state(bstate, 0) == sstate
        for pattern in _walk(circuit, n_cycles=4):
            bstate = batch.apply(bstate, pattern)
            imask = (1 << circuit.n_inputs) - 1
            low = (sstate[0] & ~imask) | (~pattern & imask)
            high = (sstate[1] & ~imask) | (pattern & imask)
            sstate = legacy.settle(circuit, (low, high), fault)
            assert batch.machine_state(bstate, 0) == sstate


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_excited_enumeration_matches_seed_on_benchmarks(name):
    """The compiled excited-gate function behind exact simulation must
    reproduce the seed's per-gate interpretation on arbitrary states."""
    circuit = load_benchmark(name, "complex")
    exc = compiled(circuit).excited_signals
    n = circuit.n_signals
    state = circuit.require_reset()
    # A deterministic multiplicative scramble over the state space.
    for i in range(200):
        state = (state * 0x9E3779B1 + i) & ((1 << n) - 1)
        assert exc(state) == legacy.excited_gates(circuit, state)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_engine_matches_seed_on_random_netlists(data):
    """Engine-vs-seed bit parity on randomized netlists and states,
    fault-free and under a random fault."""
    circuit = Circuit("randpar")
    circuit.add_input("a")
    circuit.add_input("b")
    for name in ("g0", "g1", "g2"):
        circuit.add_gate(name, expr=random_expr(data.draw))
    circuit.mark_output("g2")
    circuit.finalize()
    n = circuit.n_signals
    state = data.draw(st.integers(0, (1 << n) - 1))
    ts = ternary.from_binary(state, n)
    assert ternary.settle(circuit, ts) == legacy.settle(circuit, ts)
    faults = fault_universe(circuit, "input") + fault_universe(circuit, "output")
    fault = data.draw(st.sampled_from(faults))
    assert ternary.settle(circuit, ts, fault) == legacy.settle(circuit, ts, fault)
    assert compiled(circuit).excited_signals(state) == legacy.excited_gates(
        circuit, state
    )


def test_apply_pattern_settles_unsettled_states_like_seed():
    """Regression: apply_pattern must fully settle an *unsettled* start
    state — including when the pattern leaves the inputs unchanged —
    exactly like the historical sweep implementation."""
    circuit = Circuit("unsettled")
    circuit.add_input("a")
    circuit.add_gate("y", gtype="BUF", inputs=["a"])
    circuit.mark_output("y")
    circuit.finalize()
    # a=1, y=0: not a fixpoint.  Pattern 1 keeps the inputs unchanged.
    start = ternary.from_binary(0b01, circuit.n_signals)
    got = ternary.apply_pattern(circuit, start, 1)
    imask = (1 << circuit.n_inputs) - 1
    low = (start[0] & ~imask) | (~1 & imask)
    high = (start[1] & ~imask) | (1 & imask)
    assert got == legacy.settle(circuit, (low, high))
    assert got == ternary.from_binary(0b11, circuit.n_signals)


def test_exact_sim_matches_seed_exploration():
    """settle_report (the exact-sim core) must classify identically to a
    reference explorer built on the seed's excited-gate sweeps."""
    from repro.circuit.faults import materialize_fault

    def reference_report(circuit, start, cap=50_000):
        succs, stable, stack = {}, [], [start]
        while stack:
            state = stack.pop()
            if state in succs:
                continue
            assert len(succs) < cap
            excited = legacy.excited_gates(circuit, state)
            if not excited:
                succs[state] = ()
                stable.append(state)
                continue
            nxt = tuple(state ^ (1 << gi) for gi in excited)
            succs[state] = nxt
            stack.extend(t for t in nxt if t not in succs)
        return frozenset(stable), succs

    for name in ("ebergen", "dff", "sbuf-send-ctl"):
        circuit = load_benchmark(name, "complex")
        reset = circuit.require_reset()
        universe = fault_universe(circuit, "input")[::4]
        for fault in universe:
            faulty = materialize_fault(circuit, fault)
            start = faulty.reset_state if faulty.reset_state is not None else reset
            for pattern in range(1 << circuit.n_inputs):
                started = faulty.apply_input_pattern(start, pattern)
                report = settle_report(faulty, started)
                ref_stable, ref_succs = reference_report(faulty, started)
                assert report.stable_states == ref_stable
                assert report.n_states == len(ref_succs)
