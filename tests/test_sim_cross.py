"""Cross-model properties: ternary simulation vs exhaustive exploration.

These are the load-bearing soundness relations of the whole approach:

* **conservativeness** — if exhaustive exploration shows non-confluence
  or a cycle, ternary simulation must report Φ (it may never claim a
  definite outcome for a racy vector);
* **agreement** — if ternary is definite, the settling graph is acyclic,
  confluent, and terminates in exactly the ternary result.

Checked on the fixture circuits and on randomly generated netlists.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.expr import And, Const, Not, Or, Var, Xor
from repro.circuit.netlist import Circuit
from repro.sgraph.explore import settle_report
from repro.sim import ternary


def check_agreement(circuit, start_state):
    """The two analyses must relate correctly for one settling run.

    Note the asymmetry: a definite ternary verdict guarantees a unique
    stable outcome (and exploration must agree on it), but it does NOT
    guarantee acyclicity — a transient cycle whose escape is delay-forced
    (an excited gate that must eventually fire) still settles uniquely.
    Conversely non-confluence always forces Φ; Φ itself may also stem
    from wire-delay conservatism on a perfectly confluent circuit.
    """
    report = settle_report(circuit, start_state, cap=20_000)
    result = ternary.settle(
        circuit, ternary.from_binary(start_state, circuit.n_signals)
    )
    if ternary.is_definite(result):
        assert not report.truncated
        assert not report.nonconfluent, "definite ternary on a racy vector"
        assert report.stable_states == frozenset([ternary.to_binary(result)])
    if report.nonconfluent:
        assert not ternary.is_definite(result), (
            "exploration found a race but ternary was definite"
        )


def test_fixture_circuits_every_vector(celem, oscillator, race):
    for circuit in (celem, oscillator, race):
        for state in circuit.enumerate_stable_states():
            for pattern in range(1 << circuit.n_inputs):
                if pattern == circuit.input_pattern(state):
                    continue
                check_agreement(circuit, circuit.apply_input_pattern(state, pattern))


# -- random circuits -----------------------------------------------------

SIGNALS = ["a", "b", "g0", "g1", "g2"]


def random_expr(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 1))
    if choice == 0:
        return Var(draw(st.sampled_from(SIGNALS)))
    if choice == 1:
        return Const(draw(st.integers(0, 1)))
    if choice == 2:
        return Not(random_expr(draw, depth + 1))
    if choice == 3:
        return And((random_expr(draw, depth + 1), random_expr(draw, depth + 1)))
    if choice == 4:
        return Or((random_expr(draw, depth + 1), random_expr(draw, depth + 1)))
    return Xor(random_expr(draw, depth + 1), random_expr(draw, depth + 1))


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_random_circuits(data):
    circuit = Circuit("rand")
    circuit.add_input("a")
    circuit.add_input("b")
    for name in ("g0", "g1", "g2"):
        circuit.add_gate(name, expr=random_expr(data.draw))
    circuit.mark_output("g2")
    circuit.finalize()
    start = data.draw(st.integers(0, (1 << circuit.n_signals) - 1))
    check_agreement(circuit, start)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_circuits_from_stable_states(data):
    """Same property, but starting from genuine R_I successors."""
    circuit = Circuit("rand2")
    circuit.add_input("a")
    circuit.add_input("b")
    for name in ("g0", "g1", "g2"):
        circuit.add_gate(name, expr=random_expr(data.draw))
    circuit.finalize()
    stable = circuit.enumerate_stable_states()
    if not stable:
        return
    state = data.draw(st.sampled_from(stable))
    pattern = data.draw(st.integers(0, 3))
    check_agreement(circuit, circuit.apply_input_pattern(state, pattern))
