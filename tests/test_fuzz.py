"""The fuzzing subsystem: generator determinism, mutation contracts,
shrinking minimality, campaign packaging, and the ``repro-fuzz`` CLI.

The oracle pairs themselves are exercised against real implementations
in ``test_fuzz_corpus.py`` (frozen shrunk corpus); here the focus is
the *machinery* — in particular the divergence path: a scenario that
fails an oracle must come back as a minimal, replayable shrunk spec.
"""

import json
import random

import pytest

from repro.circuit.parser import netlist_to_text, parse_netlist
from repro.errors import ReproError
from repro.fuzz import (
    FuzzSpec,
    GeneratorConfig,
    MUTATION_OPS,
    OracleCaps,
    aggregate_reports,
    execute_fuzz_job,
    expand_fuzz,
    generate_scenario,
    mutate_netlist,
    oracle_names,
    run_scenario,
    shift_marking,
    shrink_netlist_text,
    shrink_scenario,
    shrink_spec,
)
from repro.fuzz.shrink import _netlist_candidates, _spec_moves
from repro.stg.analysis import analyse_stg
from repro.stg.parser import parse_stg
from repro.stg.reachability import build_state_graph

#: Pinned by scanning seeds: STG_SEED yields a plain STG scenario;
#: CHOICE_SEED yields one decorated with a choice block *and* a
#: parallel fork (so shrinking has decorations to strip).
STG_SEED = 4
CHOICE_SEED = 6


# -- generator ----------------------------------------------------------


def test_same_seed_byte_identical_scenarios():
    for seed in (0, 3, 4, 7, 9):
        a, b = generate_scenario(seed), generate_scenario(seed)
        assert a is not None and b is not None
        assert a.text == b.text and a.kind == b.kind and a.style == b.style


def test_generated_stgs_are_healthy_by_the_analysis_gate():
    seen_stg = False
    for seed in range(6):
        scenario = generate_scenario(seed)
        if scenario is None or scenario.kind != "stg":
            continue
        seen_stg = True
        stg = parse_stg(scenario.text)
        report = analyse_stg(stg, build_state_graph(stg))
        assert report.healthy, f"seed {seed}: {report}"
    assert seen_stg


def test_generated_netlists_parse_with_stable_reset():
    cfg = GeneratorConfig(netlist_fraction=1.0)
    seen = 0
    for seed in range(12):
        scenario = generate_scenario(seed, cfg)
        if scenario is None:
            continue
        assert scenario.kind == "netlist"
        circuit = scenario.circuit()
        assert circuit.reset_state in circuit.enumerate_stable_states()
        seen += 1
    assert seen >= 6


def test_rejection_stats_are_recorded():
    scenario = generate_scenario(STG_SEED)
    assert scenario.rejections.attempts >= 1
    assert scenario.rejections.accepted == 1


# -- mutations ----------------------------------------------------------


def test_mutations_deterministic_and_parse():
    base = netlist_to_text(generate_scenario(STG_SEED).circuit())
    for op in MUTATION_OPS:
        m1 = mutate_netlist(base, op, random.Random(7))
        m2 = mutate_netlist(base, op, random.Random(7))
        assert (m1 is None) == (m2 is None)
        if m1 is None:
            continue
        assert m1.text == m2.text and m1.target == m2.target
        assert m1.text != base
        parse_netlist(m1.text)  # mutated text must stay well-formed


def test_preserving_mutations_keep_the_exact_cssg():
    from repro.sgraph.cssg import build_cssg

    base = netlist_to_text(generate_scenario(STG_SEED).circuit())
    ref = build_cssg(parse_netlist(base), method="exact")
    for op in ("rename", "rewrite"):
        m = mutate_netlist(base, op, random.Random(3))
        assert m is not None and m.preserving
        got = build_cssg(parse_netlist(m.text), method="exact")
        assert got.reset == ref.reset
        assert got.states == ref.states
        assert got.edges == ref.edges


def test_shift_marking_reaches_a_successor_marking():
    scenario = generate_scenario(STG_SEED)
    shifted = shift_marking(scenario.text, random.Random(0))
    assert shifted is not None and shifted != scenario.text
    base, moved = parse_stg(scenario.text), parse_stg(shifted)
    successors = {
        base.fire(base.initial_marking, t)
        for t in base.enabled(base.initial_marking)
    }
    assert moved.initial_marking in successors


def test_unknown_mutation_op_rejected():
    with pytest.raises(ValueError, match="unknown mutation op"):
        mutate_netlist(".model m\n.end\n", "nope", random.Random(0))


# -- shrinking (the divergence-path acceptance criterion) ---------------


def test_spec_shrink_reaches_one_minimal_choice():
    """Synthetic failure 'has a choice block': the shrinker must strip
    every other decoration and shorten the ring/choice to the floor,
    ending 1-minimal — no remaining move keeps a choice alive."""
    scenario = generate_scenario(CHOICE_SEED)
    assert scenario.spec is not None and scenario.spec.choices

    def fails(spec):
        return len(spec.choices) >= 1

    best = shrink_spec(scenario.spec, fails)
    assert len(best.choices) == 1
    # ring shortening is gated on an undecorated spec (dropping a ring
    # signal under a live choice could orphan its position), so the
    # ring survives while the choice must stay.
    assert best.ring == scenario.spec.ring
    assert not best.pars and not best.mirrors
    choice = best.choices[0]
    assert len(choice.inputs) == 2  # minimum branch count
    assert all(chain == () for chain in choice.responses)
    assert best.style == "complex"
    for candidate in _spec_moves(best):
        assert not fails(candidate)  # 1-minimal


def test_netlist_shrink_is_one_minimal():
    cfg = GeneratorConfig(netlist_fraction=1.0)
    scenario = next(
        s for s in (generate_scenario(i, cfg) for i in range(12)) if s is not None
    )

    def fails(text):
        return len(parse_netlist(text).gates) >= 2

    best = shrink_netlist_text(scenario.text, fails)
    assert fails(best)
    for candidate in _netlist_candidates(best):
        if candidate != best:
            assert not fails(candidate)


def test_shrunk_scenario_is_replayable_same_seed():
    scenario = generate_scenario(CHOICE_SEED)

    def fails(s):
        return s.spec is not None and len(s.spec.choices) >= 1

    small = shrink_scenario(scenario, fails)
    assert small.seed == scenario.seed and small.kind == scenario.kind
    assert len(small.text) < len(scenario.text)
    # replayable: the shrunk text alone reproduces a healthy, failing STG
    stg = parse_stg(small.text)
    assert analyse_stg(stg, build_state_graph(stg)).healthy
    assert fails(small)


# -- campaign packaging -------------------------------------------------


def test_expand_fuzz_chunks_and_keys():
    spec = FuzzSpec(start=0, stop=50, chunk=20, oracles=("settle",))
    jobs = expand_fuzz(spec)
    assert [j.name for j in jobs] == ["fuzz/0..20", "fuzz/20..40", "fuzz/40..50"]
    assert len({j.key for j in jobs}) == 3
    # same spec -> same keys; different generator config -> all new keys
    assert [j.key for j in expand_fuzz(spec)] == [j.key for j in jobs]
    other = FuzzSpec(
        start=0, stop=50, chunk=20, oracles=("settle",),
        config=GeneratorConfig(max_signals=3),
    )
    assert not {j.key for j in expand_fuzz(other)} & {j.key for j in jobs}


def test_expand_fuzz_validates_inputs():
    with pytest.raises(ReproError, match="empty fuzz seed range"):
        expand_fuzz(FuzzSpec(start=5, stop=5))
    with pytest.raises(ReproError, match="chunk"):
        expand_fuzz(FuzzSpec(chunk=0))
    with pytest.raises(ReproError, match="unknown oracles"):
        expand_fuzz(FuzzSpec(oracles=("bogus",)))


def test_execute_fuzz_job_deterministic_payload():
    spec = FuzzSpec(start=2, stop=6, chunk=4, oracles=("settle",))
    job = expand_fuzz(spec)[0]
    a = execute_fuzz_job(job).to_json_dict()
    b = execute_fuzz_job(job).to_json_dict()
    a.pop("cpu_seconds"), b.pop("cpu_seconds")
    assert a == b
    assert a["n_scenarios"] + a["n_unproductive"] == 4
    assert a["n_divergent"] == 0


def test_divergence_is_shrunk_and_replayable(monkeypatch):
    """Inject a failing oracle pair and check the whole divergence
    path: the chunk payload carries the failing spec plus a shrunk
    form that is smaller, still failing, and replayable standalone."""
    import repro.fuzz.oracles as oracles_mod

    def picky_settle(ctx):
        # "Diverges" whenever the scenario still contains a choice
        # place — shrinking must strip everything else.
        has_choice = ctx.scenario.kind == "stg" and " pc0" in ctx.scenario.text
        return 1, (["choice-disagreement"] if has_choice else [])

    monkeypatch.setitem(oracles_mod.ORACLES, "settle", picky_settle)
    spec = FuzzSpec(
        start=CHOICE_SEED, stop=CHOICE_SEED + 1, chunk=1, oracles=("settle",)
    )
    result = execute_fuzz_job(expand_fuzz(spec)[0])
    assert len(result.divergences) == 1
    d = result.divergences[0]
    assert d["oracle"] == "settle" and d["detail"] == "choice-disagreement"
    assert d["shrunk_text"] and len(d["shrunk_text"]) < len(d["spec_text"])
    # replayable: parse + health + still failing, from the text alone
    stg = parse_stg(d["shrunk_text"])
    assert analyse_stg(stg, build_state_graph(stg)).healthy
    assert " pc0" in d["shrunk_text"]
    payload = result.to_json_dict()
    assert payload["n_divergent"] == 1
    agg = aggregate_reports([payload])
    assert agg["n_divergent"] == 1 and len(agg["divergences"]) == 1


def test_aggregate_reports_rejects_foreign_payloads():
    with pytest.raises(ReproError, match="non-fuzz"):
        aggregate_reports([{"kind": "atpg"}])


def test_fuzz_jobs_cache_warm_reruns(tmp_path):
    from repro.campaign import ResultStore, run_campaign

    jobs = expand_fuzz(
        FuzzSpec(start=0, stop=4, chunk=2, oracles=("settle",))
    )
    store = ResultStore(tmp_path)
    cold = run_campaign(jobs, workers=0, store=store)
    assert cold.all_ok and cold.n_ran == 2
    warm = run_campaign(jobs, workers=0, store=store)
    assert warm.all_ok and warm.n_cached == 2

    def digest(report):
        docs = []
        for o in report.outcomes:
            doc = dict(o.payload)
            doc.pop("cpu_seconds")
            docs.append(doc)
        return json.dumps(docs, sort_keys=True)

    assert digest(warm) == digest(cold)


# -- CLI ----------------------------------------------------------------


def test_fuzz_cli_smoke_and_exit_codes(tmp_path, capsys):
    from repro.cli import fuzz_main

    rc = fuzz_main(
        [
            "--seed", "0", "-n", "4", "--chunk", "2", "--workers", "0",
            "--oracles", "settle", "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"), "--quiet", "--json",
        ]
    )
    out = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert out["n_divergent"] == 0 and out["n_scenarios"] >= 3
    report = json.loads((tmp_path / "out" / "fuzz_report.json").read_text())
    assert report["aggregate"]["n_scenarios"] == out["n_scenarios"]

    assert fuzz_main(["--oracles", "bogus"]) == 2
    assert fuzz_main(["-n", "0"]) == 2  # empty seed range


def test_run_scenario_rejects_unknown_oracle():
    scenario = generate_scenario(STG_SEED)
    with pytest.raises(ValueError, match="unknown oracles"):
        run_scenario(scenario, ("nope",), OracleCaps())
    assert oracle_names() == (
        "settle", "cssg", "faults", "kernels", "incremental"
    )
