"""Frozen fuzz regression corpus: minimized specs replayed through
every differential-oracle pair on each run.

The corpus in ``tests/data/fuzz/`` was produced by shrinking generated
scenarios against feature-preserving predicates (keep the choice, keep
the mirror, keep the XOR, ...), so each file is close to the smallest
healthy spec exhibiting its feature.  Any implementation drift that
makes two paired implementations disagree — engine vs legacy settle,
explicit vs symbolic CSSG, overlay vs materialized faults, walk vs
slab kernels, plain vs incremental re-ATPG — fails the replay here,
inside tier-1, without needing a fuzzing run.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.fuzz import OracleCaps, Scenario, oracle_names, run_scenario

CORPUS_DIR = Path(__file__).resolve().parent / "data" / "fuzz"
MANIFEST = json.loads((CORPUS_DIR / "manifest.json").read_text())
ENTRIES = MANIFEST["entries"]


def _scenario(entry) -> Scenario:
    text = (CORPUS_DIR / entry["file"]).read_text()
    return Scenario(entry["seed"], entry["kind"], text, style=entry["style"])


def test_manifest_matches_files_exactly():
    on_disk = {p.name for p in CORPUS_DIR.iterdir() if p.name != "manifest.json"}
    assert on_disk == {e["file"] for e in ENTRIES}
    for entry in ENTRIES:
        text = (CORPUS_DIR / entry["file"]).read_text()
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        assert digest == entry["sha256"], (
            f"{entry['file']} drifted from the frozen corpus — regenerate "
            "the manifest only for a deliberate corpus refresh"
        )


def test_corpus_covers_both_kinds_and_both_styles():
    kinds = {e["kind"] for e in ENTRIES}
    styles = {e["style"] for e in ENTRIES}
    assert kinds == {"stg", "netlist"}
    assert styles == {"complex", "two-level"}
    assert len(ENTRIES) >= 20


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e["feature"] for e in ENTRIES]
)
def test_corpus_replays_clean_through_all_oracle_pairs(entry):
    report = run_scenario(_scenario(entry), oracle_names(), OracleCaps())
    assert report.ok, [d.to_json_dict() for d in report.divergences]
    # the battery really ran — at least the settle pair always applies
    assert report.checks["settle"] > 0
