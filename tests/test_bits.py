"""Unit tests for the packed bit-vector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bits import (
    bit,
    bits_to_str,
    flip_bit,
    hamming,
    iter_set_bits,
    mask,
    popcount,
    set_bit,
    str_to_bits,
)


def test_bit_and_set_bit():
    state = 0b1010
    assert bit(state, 0) == 0
    assert bit(state, 1) == 1
    assert set_bit(state, 0, 1) == 0b1011
    assert set_bit(state, 1, 0) == 0b1000
    assert set_bit(state, 1, 1) == state


def test_flip_bit():
    assert flip_bit(0b100, 2) == 0
    assert flip_bit(0, 3) == 0b1000


def test_mask():
    assert mask(0) == 0
    assert mask(3) == 0b111


def test_popcount_and_iter():
    assert popcount(0b1011) == 3
    assert list(iter_set_bits(0b1011)) == [0, 1, 3]
    assert list(iter_set_bits(0)) == []


def test_bits_to_str_is_lsb_first():
    # The paper writes states signal-ordered; our bit 0 prints first.
    assert bits_to_str(0b01, 2) == "10"
    assert bits_to_str(0b110, 3) == "011"


def test_str_to_bits_rejects_garbage():
    with pytest.raises(ValueError):
        str_to_bits("01x")


def test_hamming():
    assert hamming(0b1010, 0b0110) == 2
    assert hamming(5, 5) == 0


@given(st.integers(min_value=0, max_value=(1 << 24) - 1), st.integers(1, 24))
def test_str_roundtrip(value, n):
    value &= mask(n)
    assert str_to_bits(bits_to_str(value, n)) == value


@given(st.integers(min_value=0, max_value=1 << 30))
def test_popcount_matches_iter(value):
    assert popcount(value) == len(list(iter_set_bits(value)))
