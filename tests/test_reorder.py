"""BDD variable reordering (the paper's §6 'better orderings' lead)."""

import pytest

from repro.bdd.manager import BddManager
from repro.bdd.reorder import copy_with_order, sift_order, total_size
from repro.errors import BddError


def interleaved_vs_blocked():
    """f = (x0<->x3) & (x1<->x4) & (x2<->x5): blocked order is exponential,
    interleaved order is linear — the classic reordering showcase."""
    mgr = BddManager(6)
    f = mgr.and_all(
        mgr.apply_iff(mgr.var(i), mgr.var(i + 3)) for i in range(3)
    )
    return mgr, f


def table(mgr, f, nv):
    return [
        mgr.eval(f, [(m >> i) & 1 for i in range(nv)]) for m in range(1 << nv)
    ]


def test_copy_with_order_preserves_function():
    mgr, f = interleaved_vs_blocked()
    reference = table(mgr, f, 6)
    order = [0, 3, 1, 4, 2, 5]  # pairs adjacent
    dst, (g,) = copy_with_order(mgr, [f], order)
    # Variable old `order[i]` now lives at level i: translate assignments.
    for m in range(1 << 6):
        assign_old = [(m >> i) & 1 for i in range(6)]
        assign_new = [assign_old[order[level]] for level in range(6)]
        assert dst.eval(g, assign_new) == reference[m]


def test_identity_order_is_noop_in_size():
    mgr, f = interleaved_vs_blocked()
    dst, (g,) = copy_with_order(mgr, [f], list(range(6)))
    assert total_size(dst, [g]) == mgr.size(f)


def test_interleaving_shrinks_the_classic_function():
    mgr, f = interleaved_vs_blocked()
    blocked = total_size(*_rebuild(mgr, f, list(range(6))))
    paired = total_size(*_rebuild(mgr, f, [0, 3, 1, 4, 2, 5]))
    assert paired < blocked


def _rebuild(mgr, f, order):
    dst, (g,) = copy_with_order(mgr, [f], order)
    return dst, [g]


def test_sift_finds_a_good_order():
    mgr, f = interleaved_vs_blocked()
    start = total_size(mgr, [f])
    order, size = sift_order(mgr, [f])
    assert size <= start
    # Sifting must reach (or beat) the hand-paired order's size.
    paired = total_size(*_rebuild(mgr, f, [0, 3, 1, 4, 2, 5]))
    assert size <= paired


def test_bad_permutation_rejected():
    mgr, f = interleaved_vs_blocked()
    with pytest.raises(BddError):
        copy_with_order(mgr, [f], [0, 0, 1, 2, 3, 4])


def test_multiple_roots_share_nodes():
    mgr = BddManager(4)
    f = mgr.apply_and(mgr.var(0), mgr.var(1))
    g = mgr.apply_or(f, mgr.var(2))
    shared = total_size(mgr, [f, g])
    assert shared <= mgr.size(f) + mgr.size(g)
    dst, roots = copy_with_order(mgr, [f, g], [3, 2, 1, 0])
    assert total_size(dst, roots) >= 2
