"""Extensions: partial scan, undetectable classification, path listing."""

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import input_fault_universe
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.errors import NetlistError
from repro.ext.paths import enumerate_paths, structural_paths
from repro.ext.scan import insert_scan_inputs, rank_scan_candidates
from repro.ext.undetectable import (
    NEVER_EXCITED,
    POSSIBLY_DETECTABLE,
    STABLE_EQUIVALENT,
    classify_undetectable,
)
from repro.sgraph.cssg import build_cssg


# -- scan ---------------------------------------------------------------

def test_scan_insertion_structure(celem):
    scanned = insert_scan_inputs(celem, ["c"])
    assert "c" in scanned.input_names
    assert "c$obs" in scanned.output_names
    assert scanned.is_stable(scanned.require_reset())


def test_scan_rejects_bad_names(celem):
    with pytest.raises(NetlistError):
        insert_scan_inputs(celem, ["A"])  # primary input, not a gate
    with pytest.raises(NetlistError):
        insert_scan_inputs(celem, ["zz"])


def test_scan_improves_coverage_on_redundant_circuit():
    circuit = load_benchmark("converta", "complex")
    options = AtpgOptions(fault_model="input", seed=1)
    base = AtpgEngine(circuit, options).run()
    assert base.coverage < 1.0
    ranking = rank_scan_candidates(circuit, base.undetected_faults())
    assert ranking
    scanned = insert_scan_inputs(circuit, [ranking[0][0]])
    improved = AtpgEngine(scanned, options).run()
    assert improved.coverage > base.coverage


def test_rank_candidates_excludes_outputs_and_inputs(celem):
    faults = input_fault_universe(celem)
    ranking = rank_scan_candidates(celem, faults)
    names = [name for name, _ in ranking]
    assert "A" not in names and "B" not in names
    assert "c" not in names  # already an observable output


# -- undetectable classification ------------------------------------------

def test_classifier_on_known_redundancy():
    from repro.circuit.parser import parse_netlist
    from repro.circuit.faults import Fault

    net = """
    .model red
    .inputs A
    .gate a BUF A
    .expr y = a | (a & y)
    .outputs y
    .reset A=0 a=0 y=0
    """
    circuit = parse_netlist(net)
    cssg = build_cssg(circuit)
    y = circuit.index("y")
    fault = Fault("input", y, y, 0)
    result = classify_undetectable(cssg, [fault])
    assert result[fault].verdict in (NEVER_EXCITED, STABLE_EQUIVALENT)


def test_classifier_never_flags_detectable_faults(celem):
    """Soundness: every fault the engine detects must be classified as
    possibly detectable."""
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run()
    cssg = result.cssg
    detected = [
        f for f in result.faults if result.statuses[f].status == "detected"
    ]
    classes = classify_undetectable(cssg, detected)
    for fault, cls in classes.items():
        assert cls.verdict == POSSIBLY_DETECTABLE, fault.describe(celem)


def test_never_excited_symbolic_at_most_explicit():
    """The symbolic check runs over the TCSG stable set — a superset of
    the CSSG states — so it may only be *stricter* than the explicit
    walk: anything it calls never-excited, the explicit walk must too."""
    from repro.ext.undetectable import _never_excited, _never_excited_symbolic
    from repro.sgraph.symbolic import SymbolicTcsg

    for name in ("ebergen", "converta", "dff"):
        circuit = load_benchmark(name, "complex")
        cssg = build_cssg(circuit)
        sym = SymbolicTcsg(circuit)
        reach = sym.mgr.add_root(sym.reachable(sym.state_bdd(cssg.reset)))
        stable_reach = sym.mgr.add_root(
            sym.mgr.apply_and(reach, sym.stable)
        )
        for fault in input_fault_universe(circuit):
            if _never_excited_symbolic(sym, reach, stable_reach, fault):
                assert _never_excited(cssg, fault), (name, fault)


def test_classifier_symbolic_and_explicit_agree_on_verdict_partition():
    """Both never-excited backends feed the same downstream logic; the
    final undetectable-vs-possible partition must not differ on the
    bundled redundant circuit."""
    circuit = load_benchmark("converta", "complex")
    cssg = build_cssg(circuit)
    faults = input_fault_universe(circuit)
    with_symbolic = classify_undetectable(cssg, faults)
    explicit = classify_undetectable(cssg, faults, use_symbolic=False)
    for fault in faults:
        a = with_symbolic[fault].verdict == POSSIBLY_DETECTABLE
        b = explicit[fault].verdict == POSSIBLY_DETECTABLE
        assert a == b, fault.describe(circuit)


# -- path enumeration ---------------------------------------------------------

def test_paths_on_celem(celem):
    paths = list(enumerate_paths(celem))
    # A -> a -> c and B -> b -> c.
    assert len(paths) == 2
    for path in paths:
        assert celem.signals[path[0]].is_input
        assert path[-1] == celem.index("c")


def test_paths_are_simple(celem):
    for path in enumerate_paths(celem):
        assert len(set(path)) == len(path)


def test_structural_path_counts():
    circuit = load_benchmark("ebergen", "complex")
    counts = structural_paths(circuit)
    assert set(counts) == set(circuit.output_names)
    assert all(v >= 1 for v in counts.values())


def test_max_paths_cap(celem):
    assert len(list(enumerate_paths(celem, max_paths=1))) == 1
