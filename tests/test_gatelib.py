"""Gate library semantics."""

import pytest

from repro.circuit.expr import compile_expr, eval_binary
from repro.circuit.gatelib import GATE_TYPES, build_gate_expr
from repro.errors import NetlistError

INDEX = {"a": 0, "b": 1, "c": 2, "q": 3, "s": 4, "r": 5}


def table(gtype, out, ins, n):
    expr = build_gate_expr(gtype, out, ins)
    prog = compile_expr(expr, INDEX)
    return [eval_binary(prog, state) for state in range(1 << n)]


def test_buf_inv():
    assert table("BUF", "q", ["a"], 1) == [0, 1]
    assert table("INV", "q", ["a"], 1) == [1, 0]


def test_basic_two_input_gates():
    assert table("AND2", "q", ["a", "b"], 2) == [0, 0, 0, 1]
    assert table("NAND2", "q", ["a", "b"], 2) == [1, 1, 1, 0]
    assert table("OR2", "q", ["a", "b"], 2) == [0, 1, 1, 1]
    assert table("NOR2", "q", ["a", "b"], 2) == [1, 0, 0, 0]
    assert table("XOR2", "q", ["a", "b"], 2) == [0, 1, 1, 0]
    assert table("XNOR2", "q", ["a", "b"], 2) == [1, 0, 0, 1]


def test_mux_is_s_selects_first():
    # MUX21 s a b = s ? a : b; vars s=bit4, a=bit0, b=bit1
    expr = build_gate_expr("MUX21", "q", ["s", "a", "b"])
    prog = compile_expr(expr, INDEX)
    for s in (0, 1):
        for a in (0, 1):
            for b in (0, 1):
                state = a | (b << 1) | (s << 4)
                assert eval_binary(prog, state) == (a if s else b)


def test_maj3():
    got = table("MAJ3", "q", ["a", "b", "c"], 3)
    assert got == [0, 0, 0, 1, 0, 1, 1, 1]


def test_celem_holds_on_disagreement():
    # q' = ab + q(a+b): with q=1 any single input keeps it high.
    expr = build_gate_expr("CELEM", "q", ["a", "b"])
    prog = compile_expr(expr, INDEX)
    q = 1 << 3
    assert eval_binary(prog, 0b11) == 1          # both high -> rise
    assert eval_binary(prog, 0b00 | q) == 0      # both low -> fall
    assert eval_binary(prog, 0b01 | q) == 1      # hold
    assert eval_binary(prog, 0b01) == 0          # stay low


def test_celemn_inverts_last_input():
    expr = build_gate_expr("CELEMN", "q", ["a", "r"])
    prog = compile_expr(expr, INDEX)
    r = 1 << 5
    q = 1 << 3
    assert eval_binary(prog, 0b1) == 1           # a=1, r=0 -> set
    assert eval_binary(prog, r | q | 1) == 1     # hold: a=1 keeps or-term
    assert eval_binary(prog, r | q) == 0         # a=0, r=1 -> reset


def test_sr_set_dominant():
    expr = build_gate_expr("SR", "q", ["s", "r"])
    prog = compile_expr(expr, INDEX)
    s, r, q = 1 << 4, 1 << 5, 1 << 3
    assert eval_binary(prog, s | r) == 1         # set wins
    assert eval_binary(prog, q) == 1             # hold
    assert eval_binary(prog, q | r) == 0         # reset


def test_constants():
    assert table("ZERO", "q", [], 1) == [0, 0]
    assert table("ONE", "q", [], 1) == [1, 1]


def test_arity_errors():
    with pytest.raises(NetlistError):
        build_gate_expr("AND2", "q", ["a"])
    with pytest.raises(NetlistError):
        build_gate_expr("BUF", "q", ["a", "b"])
    with pytest.raises(NetlistError):
        build_gate_expr("CELEM", "q", ["a"])


def test_unknown_type():
    with pytest.raises(NetlistError):
        build_gate_expr("FROB", "q", ["a"])


def test_gate_type_table_is_callable_everywhere():
    assert all(callable(fn) for fn in GATE_TYPES.values())
