"""Parallel fault simulation: batch-of-W must equal W scalar runs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.faults import fault_universe, input_fault_universe
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary
from repro.sim.batch import FaultBatch


def walk_patterns(cssg, seed, length):
    rng = random.Random(seed)
    return cssg.random_walk(rng, length)


@pytest.mark.parametrize("model", ["input", "output"])
def test_batch_equals_scalar_on_celem(celem, model):
    faults = fault_universe(celem, model)
    cssg = build_cssg(celem)
    patterns = walk_patterns(cssg, seed=4, length=6)
    batch = FaultBatch(celem, faults)
    bstate = batch.reset_and_settle(cssg.reset)
    scalar = [
        ternary.settle_from_reset(celem, cssg.reset, f) for f in faults
    ]
    for j in range(len(faults)):
        assert batch.machine_state(bstate, j) == scalar[j]
    for pattern in patterns:
        bstate = batch.apply(bstate, pattern)
        scalar = [
            ternary.apply_pattern(celem, s, pattern, f)
            for s, f in zip(scalar, faults)
        ]
        for j in range(len(faults)):
            assert batch.machine_state(bstate, j) == scalar[j]


def test_observe_matches_scalar_detects(celem):
    faults = input_fault_universe(celem)
    cssg = build_cssg(celem)
    batch = FaultBatch(celem, faults)
    bstate = batch.reset_and_settle(cssg.reset)
    good = cssg.reset
    for pattern in walk_patterns(cssg, seed=9, length=8):
        good = cssg.edges[good][pattern]
        bstate = batch.apply(bstate, pattern)
        mask = batch.observe(bstate, good)
        for j, fault in enumerate(faults):
            expected = ternary.detects(
                celem, good, batch.machine_state(bstate, j)
            )
            assert bool((mask >> j) & 1) == expected


def test_empty_batch(celem):
    batch = FaultBatch(celem, [])
    assert batch.width == 0
    state = batch.reset_and_settle()
    assert batch.observe(state, celem.require_reset()) == 0


def test_broadcast_is_definite(celem):
    faults = input_fault_universe(celem)[:3]
    batch = FaultBatch(celem, faults)
    low, high = batch.broadcast(celem.require_reset())
    for i in range(celem.n_signals):
        assert (low[i] & high[i]) == 0
        assert (low[i] | high[i]) == batch.ones


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31), st.integers(1, 10))
def test_batch_equals_scalar_random_walks(seed, length):
    """Property: for random walks over the benchmark 'dff', every machine
    in the batch equals its scalar ternary twin after every cycle."""
    from repro.benchmarks_data import load_benchmark

    circuit = load_benchmark("dff", "complex")
    faults = input_fault_universe(circuit)
    cssg = build_cssg(circuit)
    patterns = walk_patterns(cssg, seed, length)
    batch = FaultBatch(circuit, faults)
    bstate = batch.reset_and_settle(cssg.reset)
    scalar = [ternary.settle_from_reset(circuit, cssg.reset, f) for f in faults]
    for pattern in patterns:
        bstate = batch.apply(bstate, pattern)
        scalar = [
            ternary.apply_pattern(circuit, s, pattern, f)
            for s, f in zip(scalar, faults)
        ]
    for j in range(len(faults)):
        assert batch.machine_state(bstate, j) == scalar[j]
