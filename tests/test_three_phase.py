"""The 3-phase deterministic generator (activation / justify / differ)."""

import pytest

from repro.circuit.faults import Fault, input_fault_universe
from repro.circuit.parser import parse_netlist
from repro.core.three_phase import (
    ABORTED,
    DETECTED,
    UNDETECTABLE,
    ThreePhaseGenerator,
)
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary


@pytest.fixture
def gen(celem):
    return ThreePhaseGenerator(build_cssg(celem))


def test_activation_states_sorted_by_distance(celem, gen):
    c = celem.index("c")
    fault = Fault("input", c, c, 1)  # c's feedback pin stuck at 1
    acts = gen.activation_states(fault)
    assert acts, "some stable state must excite the fault"
    dist, _ = gen.cssg.bfs_tree()
    assert [dist[s] for s in acts] == sorted(dist[s] for s in acts)
    # Excitation semantics: site value differs from the stuck value.
    for s in acts:
        assert (s >> c) & 1 == 0


def test_justification_reaches_target(celem, gen):
    target = celem.state_of({"A": 1, "B": 1, "a": 1, "b": 1, "c": 1})
    patterns = gen.justification(target)
    assert gen.cssg.run(patterns)[-1] == target
    assert gen.justification(gen.cssg.reset) == []


def test_generate_detects_every_testable_celem_fault(celem, gen):
    for fault in input_fault_universe(celem):
        outcome = gen.generate(fault)
        assert outcome.status == DETECTED, fault.describe(celem)
        # Replay the sequence: it must genuinely detect.
        good = gen.cssg.reset
        faulty = ternary.settle_from_reset(celem, good, fault)
        hit = ternary.detects(celem, good, faulty)
        for pattern in outcome.patterns:
            good = gen.cssg.edges[good][pattern]
            faulty = ternary.apply_pattern(celem, faulty, pattern, fault)
            hit = hit or ternary.detects(celem, good, faulty)
        assert hit


def test_generated_tests_are_shortest_possible(celem, gen):
    """BFS differentiation: no strictly shorter valid sequence may detect
    (checked exhaustively for short lengths)."""
    c = celem.index("c")
    fault = Fault("input", c, celem.index("a"), 1)
    outcome = gen.generate(fault)
    assert outcome.detected
    n = len(outcome.patterns)
    if n <= 2:
        shorter_hits = []
        def walk(good, faulty, depth):
            if depth >= n:
                return
            for pattern in gen.cssg.valid_patterns(good):
                g2 = gen.cssg.edges[good][pattern]
                f2 = ternary.apply_pattern(celem, faulty, pattern, fault)
                if ternary.detects(celem, g2, f2):
                    shorter_hits.append(depth + 1)
                walk(g2, f2, depth + 1)
        start_faulty = ternary.settle_from_reset(celem, gen.cssg.reset, fault)
        walk(gen.cssg.reset, start_faulty, 0)
        assert all(h >= n for h in shorter_hits)


def test_undetectable_fault_is_proven():
    """A gate with a redundant OR-branch: its pin faults cannot matter."""
    net = """
    .model red
    .inputs A
    .gate a BUF A
    .expr y = a | (a & y)
    .outputs y
    .reset A=0 a=0 y=0
    """
    circuit = parse_netlist(net)
    gen = ThreePhaseGenerator(build_cssg(circuit))
    y, a = circuit.index("y"), circuit.index("a")
    # The (a & y) branch is absorbed: y's feedback pin stuck-at-0 is
    # undetectable.
    outcome = gen.generate(Fault("input", y, y, 0))
    assert outcome.status == UNDETECTABLE
    # ... while the direct pin matters:
    outcome2 = gen.generate(Fault("input", y, a, 0))
    assert outcome2.status == DETECTED


def test_budget_abort(celem):
    gen = ThreePhaseGenerator(build_cssg(celem), max_product_states=1)
    c = celem.index("c")
    # Not detectable at reset and needs >1 product exploration.
    fault = Fault("input", c, c, 1)
    outcome = gen.generate(fault)
    assert outcome.status in (ABORTED, DETECTED)
    if outcome.status == ABORTED:
        assert outcome.product_states_explored >= 1


def test_detection_at_reset_short_circuits(celem):
    a = celem.index("a")
    fault = Fault("output", a, a, 1)  # buffer output stuck high
    # 'a' is not an output of celem, so reset observation may or may not
    # catch it; craft one on the observable signal instead.
    c = celem.index("c")
    fault = Fault("output", c, c, 1)
    gen = ThreePhaseGenerator(build_cssg(celem))
    outcome = gen.generate(fault)
    assert outcome.detected
    assert outcome.patterns == ()  # visible at observation 0
    assert outcome.detected_during_justification
