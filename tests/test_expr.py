"""Expression AST, parser, compilation and the three evaluation domains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.expr import (
    And,
    Const,
    Not,
    Or,
    Var,
    Xor,
    and_all,
    compile_expr,
    eval_binary,
    eval_ternary,
    or_all,
    parse_expr,
    program_vars,
)
from repro.errors import ParseError

NAMES = ["a", "b", "c", "d"]
INDEX = {n: i for i, n in enumerate(NAMES)}


def bits_getv(state):
    return lambda sig: (((~state) >> sig) & 1, (state >> sig) & 1)


# -- parsing ---------------------------------------------------------------

def test_parse_precedence():
    # ~ binds tighter than &, & tighter than ^, ^ tighter than |.
    e = parse_expr("a | b ^ c & ~d")
    assert str(e) == "a | (b ^ (c & ~d))"


def test_parse_parentheses():
    e = parse_expr("(a | b) & c")
    assert isinstance(e, And)


def test_parse_constants_and_bang():
    assert parse_expr("0") == Const(0)
    assert parse_expr("!a") == Not(Var("a"))


@pytest.mark.parametrize("text", ["a &", "(a | b", "a b", "a | | b", ""])
def test_parse_errors(text):
    with pytest.raises(ParseError):
        parse_expr(text)


def test_parse_error_carries_position():
    with pytest.raises(ParseError) as excinfo:
        parse_expr("a &", filename="f.net", line=7)
    assert "f.net:7" in str(excinfo.value)


# -- AST utilities -----------------------------------------------------------

def test_vars_first_appearance_order():
    assert parse_expr("c & a | c & b").vars() == ["c", "a", "b"]


def test_operator_sugar():
    e = (Var("a") & Var("b")) | ~Var("c")
    assert str(e) == "(a & b) | ~c"
    assert (Var("a") ^ Var("b")) == Xor(Var("a"), Var("b"))


def test_and_or_all_degenerate():
    assert and_all([]) == Const(1)
    assert or_all([]) == Const(0)
    assert and_all([Var("a")]) == Var("a")


def test_nary_constructors_reject_singletons():
    with pytest.raises(ValueError):
        And((Var("a"),))
    with pytest.raises(ValueError):
        Or((Var("a"),))
    with pytest.raises(ValueError):
        Const(2)


# -- compile + binary eval ----------------------------------------------------

def test_compile_unknown_var_raises_keyerror():
    with pytest.raises(KeyError):
        compile_expr(Var("zz"), INDEX)


def test_program_vars_sorted_unique():
    prog = compile_expr(parse_expr("b & a | b"), INDEX)
    assert program_vars(prog) == (0, 1)


@pytest.mark.parametrize(
    "text,table",
    [
        ("a & b", [0, 0, 0, 1]),
        ("a | b", [0, 1, 1, 1]),
        ("a ^ b", [0, 1, 1, 0]),
        ("~a", [1, 0, 1, 0]),
        ("~(a & b) | 0", [1, 1, 1, 0]),
    ],
)
def test_binary_eval_truth_tables(text, table):
    prog = compile_expr(parse_expr(text), INDEX)
    got = [eval_binary(prog, state) for state in range(4)]
    assert got == table


# -- ternary eval --------------------------------------------------------------

PHI = (1, 1)


def test_ternary_not_and_or_xor_with_phi():
    prog_and = compile_expr(parse_expr("a & b"), INDEX)
    # a = phi, b = 0 -> 0 (AND absorbs)
    getv = {0: PHI, 1: (1, 0)}.get
    assert eval_ternary(prog_and, getv) == (1, 0)
    # a = phi, b = 1 -> phi
    getv = {0: PHI, 1: (0, 1)}.get
    assert eval_ternary(prog_and, getv) == PHI
    prog_or = compile_expr(parse_expr("a | b"), INDEX)
    getv = {0: PHI, 1: (0, 1)}.get
    assert eval_ternary(prog_or, getv) == (0, 1)
    prog_xor = compile_expr(parse_expr("a ^ b"), INDEX)
    getv = {0: PHI, 1: (0, 1)}.get
    assert eval_ternary(prog_xor, getv) == PHI


# Random expression trees for the property tests.
def exprs(depth=4):
    leaf = st.sampled_from([Var(n) for n in NAMES] + [Const(0), Const(1)])
    return st.recursive(
        leaf,
        lambda sub: st.one_of(
            sub.map(Not),
            st.tuples(sub, sub).map(lambda t: And(t)),
            st.tuples(sub, sub).map(lambda t: Or(t)),
            st.tuples(sub, sub).map(lambda t: Xor(*t)),
        ),
        max_leaves=12,
    )


@given(exprs(), st.integers(0, 15))
def test_ternary_agrees_with_binary_on_definite_inputs(expr, state):
    prog = compile_expr(expr, INDEX)
    expected = eval_binary(prog, state)
    got = eval_ternary(prog, bits_getv(state))
    assert got == ((1, 0) if expected == 0 else (0, 1))


@given(exprs(), st.integers(0, 15), st.integers(0, 15))
def test_ternary_is_monotone_in_information_order(expr, state, phi_mask):
    """Lifting some inputs to phi can only lose information: the ternary
    result must still admit the binary result of every refinement."""
    prog = compile_expr(expr, INDEX)

    def getv(sig):
        if (phi_mask >> sig) & 1:
            return PHI
        return bits_getv(state)(sig)

    low, high = eval_ternary(prog, getv)
    value = eval_binary(prog, state)
    # The definite evaluation must be contained in the ternary one.
    assert (low, high) in (PHI, ((1, 0) if value == 0 else (0, 1)))
