"""Fault universe construction."""

import pytest

from repro.errors import ReproError
from repro.circuit.faults import (
    Fault,
    fault_universe,
    gate_of,
    input_fault_universe,
    output_fault_universe,
)


def test_output_universe_two_per_gate(celem):
    faults = output_fault_universe(celem)
    assert len(faults) == 2 * celem.n_gates
    assert all(f.kind == "output" and f.gate == f.site for f in faults)


def test_input_universe_two_per_pin(celem):
    faults = input_fault_universe(celem)
    pins = sum(len(g.support) for g in celem.gates)
    assert len(faults) == 2 * pins
    # The C-element's feedback input is a pin too.
    c = celem.index("c")
    assert Fault("input", c, c, 0) in faults
    assert Fault("input", c, c, 1) in faults


def test_input_universe_at_least_as_large_as_output(celem):
    # Every gate has >= 1 input pin, so the input model subsumes the
    # output model in count (the paper's remark).
    assert len(input_fault_universe(celem)) >= len(output_fault_universe(celem))


def test_fault_universe_dispatch(celem):
    assert fault_universe(celem, "input") == input_fault_universe(celem)
    assert fault_universe(celem, "output") == output_fault_universe(celem)
    # Unknown models raise ReproError naming the registered ones (so the
    # CLIs exit 1 with an actionable message, not a traceback).
    with pytest.raises(ReproError, match="stuck-open.*registered models.*input"):
        fault_universe(celem, "stuck-open")


def test_describe(celem):
    c = celem.index("c")
    a = celem.index("a")
    assert Fault("input", c, a, 0).describe(celem) == "c<-a SA0"
    assert Fault("output", c, c, 1).describe(celem) == "c SA1"


def test_excitation_site(celem):
    c = celem.index("c")
    a = celem.index("a")
    assert Fault("input", c, a, 0).excitation_site() == a
    assert Fault("output", c, c, 1).excitation_site() == c


def test_gate_of(celem):
    c = celem.index("c")
    fault = Fault("input", c, celem.index("a"), 0)
    gate = gate_of(celem, fault)
    assert gate is not None and gate.name == "c"
    bogus = Fault("input", 0, 0, 0)  # site 0 is the primary input wire
    assert gate_of(celem, bogus) is None


def test_faults_are_hashable_and_ordered(celem):
    faults = input_fault_universe(celem)
    assert len(set(faults)) == len(faults)
    assert sorted(faults) == sorted(faults, key=lambda f: (f.kind, f.gate, f.site, f.value))
