"""Every bundled benchmark must be semantically healthy and synthesizable."""

import pytest

from repro.benchmarks_data import (
    FIGURE_NETS,
    TABLE1_NAMES,
    TABLE2_NAMES,
    benchmark_names,
    benchmark_path,
    load_benchmark,
    load_benchmark_stg,
    load_figure_circuit,
)
from repro.errors import ReproError
from repro.sgraph.cssg import build_cssg
from repro.stg.reachability import build_state_graph, check_csc


def test_registry_contents():
    assert len(TABLE1_NAMES) == 23
    assert set(TABLE2_NAMES) <= set(TABLE1_NAMES)
    assert benchmark_names() == list(TABLE1_NAMES)
    assert set(FIGURE_NETS) == {"fig1a", "fig1b"}


def test_unknown_names_rejected():
    with pytest.raises(ReproError):
        benchmark_path("nonesuch")
    with pytest.raises(ReproError):
        load_figure_circuit("fig9z")


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_stg_is_consistent_safe_and_csc(name):
    stg = load_benchmark_stg(name)
    sg = build_state_graph(stg)  # raises on safeness/consistency issues
    assert sg.n_states >= 4
    assert check_csc(sg) == []


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_complex_synthesis_and_cssg(name):
    circuit = load_benchmark(name, "complex")
    assert circuit.is_stable(circuit.require_reset())
    assert circuit.output_names  # observable outputs exist
    method = "exact" if circuit.n_signals <= 14 else "ternary"
    cssg = build_cssg(circuit, method=method)
    assert cssg.n_states >= 2
    assert cssg.n_edges >= 2


@pytest.mark.parametrize("name", TABLE2_NAMES)
def test_two_level_synthesis_and_cssg(name):
    circuit = load_benchmark(name, "two-level")
    assert circuit.is_stable(circuit.require_reset())
    method = "exact" if circuit.n_signals <= 14 else "ternary"
    cssg = build_cssg(circuit, method=method)
    assert cssg.n_states >= 2
    assert cssg.n_edges >= 1


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_every_output_visible_in_some_stable_state(name):
    """Regression guard for the 'pulse-only output' design flaw: every
    STG output must hold 1 in at least one stable CSSG state, else its
    faults are structurally unobservable."""
    circuit = load_benchmark(name, "complex")
    method = "exact" if circuit.n_signals <= 14 else "ternary"
    cssg = build_cssg(circuit, method=method)
    for out in circuit.outputs:
        assert any((s >> out) & 1 for s in cssg.states), (
            f"{name}: output {circuit.signal_name(out)} never high in a "
            "stable state"
        )


def test_figure_circuits_load():
    fig1a = load_figure_circuit("fig1a")
    fig1b = load_figure_circuit("fig1b")
    assert fig1a.n_inputs == 2 and fig1b.n_inputs == 1
    assert fig1a.is_stable(fig1a.require_reset())
    assert fig1b.is_stable(fig1b.require_reset())


def test_loading_is_cached():
    a = load_benchmark("hazard", "complex")
    b = load_benchmark("hazard", "complex")
    assert a is b
