"""The ROBDD engine vs brute-force truth tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError

NV = 4


def brute(fn):
    """Truth table of fn(assignment tuple) over NV variables."""
    return [fn(tuple((m >> i) & 1 for i in range(NV))) for m in range(1 << NV)]


def bdd_table(mgr, f):
    return [mgr.eval(f, [(m >> i) & 1 for i in range(NV)]) for m in range(1 << NV)]


@pytest.fixture
def mgr():
    return BddManager(NV)


def test_terminals_and_vars(mgr):
    assert mgr.eval(TRUE, [0] * NV) == 1
    assert mgr.eval(FALSE, [1] * NV) == 0
    x1 = mgr.var(1)
    assert bdd_table(mgr, x1) == brute(lambda a: a[1])
    assert bdd_table(mgr, mgr.nvar(1)) == brute(lambda a: 1 - a[1])


def test_var_bounds(mgr):
    with pytest.raises(BddError):
        mgr.var(NV)


def test_canonicity_equal_functions_same_handle(mgr):
    a, b = mgr.var(0), mgr.var(1)
    f1 = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(a, mgr.apply_not(b)))
    assert f1 == a  # ab + a~b == a
    g = mgr.apply_not(mgr.apply_not(b))
    assert g == b


def test_basic_ops(mgr):
    a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
    f = mgr.apply_and(mgr.apply_or(a, b), mgr.apply_xor(b, c))
    assert bdd_table(mgr, f) == brute(lambda t: (t[0] | t[1]) & (t[1] ^ t[2]))
    assert bdd_table(mgr, mgr.apply_iff(a, c)) == brute(lambda t: int(t[0] == t[2]))


def test_and_all_or_all_short_circuit(mgr):
    a = mgr.var(0)
    assert mgr.and_all([a, FALSE, mgr.var(1)]) == FALSE
    assert mgr.or_all([a, TRUE]) == TRUE
    assert mgr.and_all([]) == TRUE
    assert mgr.or_all([]) == FALSE


def test_exists_forall(mgr):
    a, b = mgr.var(0), mgr.var(1)
    f = mgr.apply_and(a, b)
    assert mgr.exists(f, [0]) == b
    assert mgr.forall(f, [0]) == FALSE
    g = mgr.apply_or(a, b)
    assert mgr.forall(g, [0]) == b


def test_and_exists_is_relational_product(mgr):
    a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
    f = mgr.apply_or(mgr.apply_and(a, b), c)
    g = mgr.apply_xor(a, b)
    direct = mgr.exists(mgr.apply_and(f, g), [0, 1])
    fused = mgr.and_exists(f, g, [0, 1])
    assert direct == fused


def test_rename_order_preserving(mgr):
    b = mgr.var(1)
    f = mgr.apply_and(b, mgr.var(3))
    g = mgr.rename(f, {1: 0, 3: 2})
    assert bdd_table(mgr, g) == brute(lambda t: t[0] & t[2])


def test_rename_arbitrary_maps(mgr):
    f = mgr.apply_and(mgr.var(1), mgr.apply_not(mgr.var(3)))
    # Order-inverting map: 1 -> 2, 3 -> 0.
    g = mgr.rename(f, {1: 2, 3: 0})
    assert bdd_table(mgr, g) == brute(lambda t: t[2] & (1 - t[0]))
    # Swap within the support (simultaneous, no capture).
    h = mgr.rename(f, {1: 3, 3: 1})
    assert bdd_table(mgr, h) == brute(lambda t: t[3] & (1 - t[1]))
    # Identity entries are dropped, not capture errors.
    assert mgr.rename(f, {1: 1, 3: 3}) == f


def test_rename_swap_around_unmapped_support_var(mgr):
    """Regression: a swap whose targets straddle an unmapped in-support
    variable must re-insert that variable in order — the naive ``_mk``
    rebuild produced an ill-ordered, non-canonical BDD."""
    f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2))
    g = mgr.rename(f, {0: 2, 2: 0})
    expect = mgr.apply_or(mgr.apply_and(mgr.var(2), mgr.var(1)), mgr.var(0))
    assert g == expect  # canonicity: same function, same handle
    assert bdd_table(mgr, g) == brute(lambda t: (t[2] & t[1]) | t[0])
    assert mgr.sat_count(g) == sum(brute(lambda t: (t[2] & t[1]) | t[0]))


def test_rename_error_paths(mgr):
    f = mgr.apply_and(mgr.var(1), mgr.var(3))
    with pytest.raises(BddError, match="not injective"):
        mgr.rename(f, {1: 2, 3: 2})
    with pytest.raises(BddError, match="captures"):
        mgr.rename(f, {1: 3})  # 3 is unmapped support: would merge
    with pytest.raises(BddError, match="not declared"):
        mgr.rename(f, {1: NV + 5})


def test_restrict(mgr):
    a, b = mgr.var(0), mgr.var(1)
    f = mgr.apply_xor(a, b)
    assert mgr.restrict(f, {0: 0}) == b
    assert mgr.restrict(f, {0: 1}) == mgr.apply_not(b)


def test_sat_count_and_iter(mgr):
    a, b = mgr.var(0), mgr.var(1)
    f = mgr.apply_or(a, b)
    assert mgr.sat_count(f) == 3 * (1 << (NV - 2))
    assert mgr.sat_count(f, [0, 1]) == 3
    sols = list(mgr.sat_iter(f, [0, 1]))
    assert sorted((s[0], s[1]) for s in sols) == [(0, 1), (1, 0), (1, 1)]
    assert mgr.sat_count(FALSE, [0]) == 0
    assert mgr.sat_count(TRUE, [0, 1]) == 4


def test_support_and_size(mgr):
    a, c = mgr.var(0), mgr.var(2)
    f = mgr.apply_and(a, c)
    assert mgr.support(f) == [0, 2]
    assert mgr.size(f) == 2
    assert mgr.support(TRUE) == []


# -- property tests against brute force --------------------------------------

def boolfuns():
    """Random expression builders as (python fn, bdd builder fn) pairs."""
    leaf = st.sampled_from(
        [(lambda t, i=i: t[i], lambda m, i=i: m.var(i)) for i in range(NV)]
        + [(lambda t: 0, lambda m: FALSE), (lambda t: 1, lambda m: TRUE)]
    )

    def combine(children):
        return st.sampled_from(["and", "or", "xor", "not"]).flatmap(
            lambda op: (
                children.map(
                    lambda x: (lambda t: 1 - x[0](t), lambda m: m.apply_not(x[1](m)))
                )
                if op == "not"
                else st.tuples(children, children).map(
                    lambda pair: _combine(op, pair)
                )
            )
        )

    return st.recursive(leaf, combine, max_leaves=10)


def _combine(op, pair):
    (fa, ba), (fb, bb) = pair
    if op == "and":
        return (lambda t: fa(t) & fb(t), lambda m: m.apply_and(ba(m), bb(m)))
    if op == "or":
        return (lambda t: fa(t) | fb(t), lambda m: m.apply_or(ba(m), bb(m)))
    return (lambda t: fa(t) ^ fb(t), lambda m: m.apply_xor(ba(m), bb(m)))


@settings(max_examples=120, deadline=None)
@given(boolfuns())
def test_random_functions_match_brute_force(pair):
    fn, build = pair
    mgr = BddManager(NV)
    f = build(mgr)
    assert bdd_table(mgr, f) == brute(fn)


@settings(max_examples=60, deadline=None)
@given(boolfuns(), st.sets(st.integers(0, NV - 1)))
def test_exists_matches_brute_force(pair, variables):
    fn, build = pair
    mgr = BddManager(NV)
    f = mgr.exists(build(mgr), sorted(variables))

    def quantified(t):
        results = []

        def rec(assign, rest):
            if not rest:
                results.append(fn(tuple(assign)))
                return
            i, *more = rest
            for v in (0, 1):
                assign[i] = v
                rec(assign, more)

        rec(list(t), sorted(variables))
        return 1 if any(results) else 0

    assert bdd_table(mgr, f) == brute(quantified)


@settings(max_examples=60, deadline=None)
@given(boolfuns())
def test_sat_count_matches_brute_force(pair):
    fn, build = pair
    mgr = BddManager(NV)
    f = build(mgr)
    assert mgr.sat_count(f) == sum(brute(fn))
