"""Every bundled example must run cleanly (smoke tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "anomalies", "stg_to_tests",
            "partial_scan", "three_phase_walkthrough"} <= names
