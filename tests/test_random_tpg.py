"""Random TPG: coverage, determinism, and no false detections."""

from repro.circuit.faults import input_fault_universe
from repro.core.random_tpg import random_tpg
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary


def test_detects_faults_on_celem(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    detected, tests = random_tpg(cssg, faults, n_walks=8, walk_len=16, seed=0)
    assert detected  # the C-element is highly random-testable
    assert all(t.source == "random" for t in tests)
    covered = {f for t in tests for f in t.faults}
    assert covered == set(detected)


def test_deterministic_given_seed(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    a = random_tpg(cssg, faults, n_walks=4, walk_len=8, seed=7)
    b = random_tpg(cssg, faults, n_walks=4, walk_len=8, seed=7)
    assert a[0] == b[0]
    assert [t.patterns for t in a[1]] == [t.patterns for t in b[1]]


def test_every_reported_detection_is_replayable(celem):
    """No over-reporting: replaying each recorded sequence with scalar
    ternary simulation must definitely expose every credited fault."""
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    detected, _tests = random_tpg(cssg, faults, n_walks=8, walk_len=16, seed=3)
    for fault, patterns in detected.items():
        good = cssg.reset
        faulty = ternary.settle_from_reset(celem, cssg.reset, fault)
        hit = ternary.detects(celem, good, faulty)
        for pattern in patterns:
            good = cssg.edges[good][pattern]
            faulty = ternary.apply_pattern(celem, faulty, pattern, fault)
            hit = hit or ternary.detects(celem, good, faulty)
        assert hit, fault.describe(celem)


def test_sequences_are_valid_cssg_walks(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    _, tests = random_tpg(cssg, faults, n_walks=8, walk_len=16, seed=5)
    for t in tests:
        cssg.run(t.patterns)  # must not raise


def test_zero_walks_detects_nothing(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    detected, tests = random_tpg(cssg, faults, n_walks=0, walk_len=8, seed=0)
    assert detected == {} and tests == []


def test_walks_stop_when_all_faults_fall(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    detected, tests = random_tpg(cssg, faults, n_walks=500, walk_len=64, seed=1)
    # Far fewer walks recorded than requested: coverage saturates.
    assert len(tests) < 500
