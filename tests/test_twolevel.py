"""Quine–McCluskey minimization with don't-cares, vs brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stg.twolevel import (
    Cube,
    compute_primes,
    cover_eval,
    exact_cover,
    hazard_aware_cover,
    irredundant_cover,
    verify_cover,
)


def test_cube_covers_and_literals():
    # x0 & ~x2 over 3 vars: dashes on x1.
    cube = Cube(ones=0b001, dashes=0b010)
    assert cube.covers(0b001) and cube.covers(0b011)
    assert not cube.covers(0b101) and not cube.covers(0b000)
    assert cube.literals(3) == [(0, 1), (2, 0)]


def test_primes_of_xor_are_minterms():
    on = [0b01, 0b10]
    primes = compute_primes(on, [], 2)
    assert sorted(primes) == sorted([Cube(0b01, 0), Cube(0b10, 0)])


def test_primes_merge_with_dc():
    # ON = {11}, DC = {10}: prime expands over x1 -> cube x0 (x1 dashed)?
    # Bits: var0 = LSB.  {0b11, 0b10} merge over var0 -> ones=0b10, dash 0b01.
    primes = compute_primes([0b11], [0b10], 2)
    assert Cube(0b10, 0b01) in primes


def test_primes_filtered_to_on_relevant():
    # A prime covering only DC minterms must not be returned.
    primes = compute_primes([0b00], [0b11], 2)
    for p in primes:
        assert p.covers(0b00)


def full_function_cases():
    # (on, dc, nv) triples exercising classic shapes.
    return [
        ([3, 5, 6, 7], [], 3),          # majority
        ([0, 1, 2, 3], [], 3),          # ~x2
        ([1, 2], [3], 2),               # or with dc
        ([0, 7], [], 3),                # two isolated minterms
        ([0, 1, 4, 5, 6], [2], 3),
    ]


@pytest.mark.parametrize("on,dc,nv", full_function_cases())
def test_irredundant_cover_correct_and_irredundant(on, dc, nv):
    off = [m for m in range(1 << nv) if m not in on and m not in dc]
    primes = compute_primes(on, dc, nv)
    cover = irredundant_cover(primes, on)
    assert verify_cover(cover, on, off)
    # Irredundancy: removing any cube must break ON coverage.
    for cube in cover:
        rest = [c for c in cover if c != cube]
        assert not all(cover_eval(rest, m) for m in on)


@pytest.mark.parametrize("on,dc,nv", full_function_cases())
def test_exact_cover_is_minimum(on, dc, nv):
    primes = compute_primes(on, dc, nv)
    best = exact_cover(primes, on)
    assert all(cover_eval(best, m) for m in on)
    # No smaller subset of primes covers ON.
    for size in range(len(best)):
        for subset in itertools.combinations(primes, size):
            assert not all(cover_eval(list(subset), m) for m in on)


@pytest.mark.parametrize("on,dc,nv", full_function_cases())
def test_irredundant_at_least_exact_size(on, dc, nv):
    primes = compute_primes(on, dc, nv)
    assert len(irredundant_cover(primes, on)) >= len(exact_cover(primes, on))


def test_hazard_aware_cover_keeps_spanning_cube():
    # f = majority(a,b,c).  Transition 011 -> 111 stays 1; cube bc spans
    # it, while {ab, ac} alone would glitch.
    on = [3, 5, 6, 7]
    primes = compute_primes(on, [], 3)
    cover, uncoverable = hazard_aware_cover(primes, on, [(0b110, 0b111)])
    assert not uncoverable
    assert any(c.covers(0b110) and c.covers(0b111) for c in cover)
    assert verify_cover(cover, on, [0, 1, 2, 4])


def test_hazard_aware_reports_uncoverable_pairs():
    # f = xor: 01 and 10 are both ON but no single cube spans them.
    on = [1, 2]
    primes = compute_primes(on, [], 2)
    cover, uncoverable = hazard_aware_cover(primes, on, [(1, 2)])
    assert uncoverable == [(1, 2)]
    assert verify_cover(cover, on, [0, 3])


@settings(max_examples=80, deadline=None)
@given(
    st.integers(2, 4),
    st.data(),
)
def test_random_functions_minimize_correctly(nv, data):
    universe = list(range(1 << nv))
    on = data.draw(st.sets(st.sampled_from(universe)))
    rest = [m for m in universe if m not in on]
    dc = data.draw(st.sets(st.sampled_from(rest))) if rest else set()
    off = [m for m in universe if m not in on and m not in dc]
    primes = compute_primes(on, dc, nv)
    if not on:
        assert primes == []
        return
    cover = irredundant_cover(primes, on)
    assert verify_cover(cover, on, off)
    complete = primes
    assert verify_cover(complete, on, off)
    # Every prime must be a genuine implicant of ON+DC and prime
    # (expanding any literal hits OFF).
    care = set(on) | set(dc)
    for p in primes:
        for m in universe:
            if p.covers(m):
                assert m in care
        for i in range(nv):
            if not (p.dashes >> i) & 1:
                grown = Cube(p.ones & ~(1 << i), p.dashes | (1 << i))
                assert any(grown.covers(m) for m in off)
