"""CSSG construction: pruning, determinism, justification, methods."""

import random

import pytest

from repro.circuit.parser import parse_netlist
from repro.errors import StateGraphError
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary


def test_celem_cssg_shape(celem):
    cssg = build_cssg(celem)
    assert cssg.reset == celem.require_reset()
    assert cssg.n_states == 6
    assert cssg.n_edges == 14
    # Every rejected vector on this circuit is a non-confluent race.
    assert cssg.stats.n_nonconfluent > 0
    assert cssg.stats.n_oscillating == 0


def test_edges_are_deterministic_and_stable(celem):
    cssg = build_cssg(celem)
    for s, edges in cssg.edges.items():
        assert celem.is_stable(s)
        for pattern, t in edges.items():
            assert pattern != celem.input_pattern(s)
            assert celem.is_stable(t)
            assert celem.input_pattern(t) == pattern
            assert t in cssg.states


def test_edges_match_ternary_simulation(celem):
    """Exact-method edges must agree with a definite ternary verdict."""
    cssg = build_cssg(celem, method="exact")
    for s, edges in cssg.edges.items():
        for pattern, t in edges.items():
            result = ternary.apply_pattern(
                celem, ternary.from_binary(s, celem.n_signals), pattern
            )
            if ternary.is_definite(result):
                assert ternary.to_binary(result) == t


def test_exact_and_ternary_methods_agree_on_si_circuit(celem):
    exact = build_cssg(celem, method="exact")
    tern = build_cssg(celem, method="ternary")
    # Ternary is conservative: its edges are a subset of the exact ones
    # (and on this circuit they coincide).
    assert tern.states <= exact.states
    for s in tern.edges:
        for pattern, t in tern.edges[s].items():
            assert exact.edges[s][pattern] == t
    assert exact.n_edges == tern.n_edges


def test_oscillating_vector_pruned(oscillator):
    cssg = build_cssg(oscillator)
    assert cssg.valid_patterns(cssg.reset) == {}
    assert cssg.stats.n_oscillating == 1


def test_k_too_small_prunes_slow_vectors(celem):
    # Raising both inputs takes 3 transitions (a, b, then c); raising a
    # single input takes 1.  With k=1 only the single-input vectors stay.
    cssg = build_cssg(celem, k=1)
    assert cssg.stats.n_too_slow > 0
    assert 0b11 not in cssg.valid_patterns(cssg.reset)
    assert 0b01 in cssg.valid_patterns(cssg.reset)
    full = build_cssg(celem)  # default k admits everything confluent
    assert full.n_edges > cssg.n_edges


def test_max_input_changes_restricts_vectors(celem):
    free = build_cssg(celem)
    limited = build_cssg(celem, max_input_changes=1)
    assert limited.n_edges < free.n_edges
    for s, edges in limited.edges.items():
        cur = celem.input_pattern(s)
        for pattern in edges:
            assert bin(pattern ^ cur).count("1") == 1


def test_unknown_method_rejected(celem):
    with pytest.raises(StateGraphError, match="unknown CSSG method"):
        build_cssg(celem, method="magic")


def test_method_registry_builders(celem):
    from repro.sgraph.cssg import CSSG_METHODS, CssgBuilder

    assert set(CSSG_METHODS) == {"exact", "ternary", "hybrid", "symbolic"}
    for name, builder in CSSG_METHODS.items():
        assert builder.method == name
        assert isinstance(builder, CssgBuilder)  # runtime protocol check
    cssg = CSSG_METHODS["symbolic"].build(celem)
    assert cssg.method == "symbolic"
    assert cssg.states == build_cssg(celem, method="exact").states


def test_build_records_method(celem):
    for method in ("exact", "ternary", "hybrid", "symbolic"):
        assert build_cssg(celem, method=method).method == method


def test_cap_states_enforced_by_every_method():
    from repro.benchmarks_data import load_benchmark

    circuit = load_benchmark("dff", "complex")  # 6 stable states
    for method in ("exact", "ternary", "hybrid", "symbolic"):
        with pytest.raises(StateGraphError, match="exceeded 3 stable states"):
            build_cssg(circuit, method=method, cap_states=3)


def test_custom_builder_registration(celem):
    """The registry is open: a custom CssgBuilder plugs into build_cssg."""
    from repro.sgraph.cssg import CSSG_METHODS

    class Wrapped:
        method = "wrapped-exact"

        def build(self, circuit, **kwargs):
            cssg = CSSG_METHODS["exact"].build(circuit, **kwargs)
            cssg.stats.method = self.method
            return cssg

    CSSG_METHODS["wrapped-exact"] = Wrapped()
    try:
        cssg = build_cssg(celem, method="wrapped-exact")
        assert cssg.method == "wrapped-exact"
        assert cssg.states == build_cssg(celem, method="exact").states
    finally:
        del CSSG_METHODS["wrapped-exact"]


def test_auto_resolution_picks_symbolic_for_large_state_spaces(celem):
    from repro.core.atpg import AtpgOptions, resolve_cssg_method

    assert resolve_cssg_method(celem, AtpgOptions()) == "hybrid"
    tiny_limit = AtpgOptions(auto_exact_limit=celem.n_signals - 1)
    assert resolve_cssg_method(celem, tiny_limit) == "symbolic"
    explicit = AtpgOptions(cssg_method="ternary")
    assert resolve_cssg_method(celem, explicit) == "ternary"


def test_missing_reset_rejected():
    c = parse_netlist(".inputs A\n.gate g BUF A\n.outputs g\n")
    with pytest.raises(Exception):
        build_cssg(c)


def test_unstable_reset_that_settles_is_accepted():
    c = parse_netlist(
        ".inputs A\n.gate g BUF A\n.outputs g\n.reset A=1 g=0\n"
    )
    cssg = build_cssg(c)
    assert c.is_stable(cssg.reset)
    assert c.value(cssg.reset, "g") == 1


def test_bfs_tree_and_justify(celem):
    cssg = build_cssg(celem)
    dist, parent = cssg.bfs_tree()
    assert dist[cssg.reset] == 0
    assert set(dist) == cssg.states
    up = celem.state_of({"A": 1, "B": 1, "a": 1, "b": 1, "c": 1})
    patterns, reached = cssg.justify([up])
    assert reached == up
    assert len(patterns) == dist[up]
    assert cssg.run(patterns)[-1] == up


def test_justify_unreachable_returns_none(celem):
    cssg = build_cssg(celem)
    bogus = celem.state_of({"A": 1, "B": 0, "a": 0, "b": 1, "c": 1})
    assert cssg.justify([bogus]) is None
    assert cssg.justify([]) is None


def test_run_rejects_invalid_pattern(celem):
    cssg = build_cssg(celem)
    with pytest.raises(StateGraphError):
        cssg.run([celem.input_pattern(cssg.reset)])


def test_random_walk_stays_on_edges(celem):
    cssg = build_cssg(celem)
    rng = random.Random(0)
    patterns = cssg.random_walk(rng, 20)
    assert len(patterns) == 20
    cssg.run(patterns)  # must not raise


def test_cap_states_enforced(celem):
    with pytest.raises(StateGraphError):
        build_cssg(celem, cap_states=2)
