"""End-to-end tests for the ``repro-serve`` daemon.

The harness runs a real :class:`~repro.serve.server.ReproServer` —
asyncio loop on a background thread, actual TCP sockets — and drives it
with the stdlib :class:`~repro.serve.client.ServeClient`, exactly the
way a user's script (or the CI smoke job) would.  The inline back end
(``workers=0``) keeps most tests fast and deterministic; one test runs
the fork-worker back end to cover the cross-process event relay.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.benchmarks_data import load_benchmark
from repro.campaign.store import ResultStore
from repro.core.atpg import AtpgOptions
from repro.flow import Flow
from repro.serve import QosPolicy, ReproServer, ServeClient
from repro.serve.client import ServeError


class ServerHarness:
    """One live server on an ephemeral port, loop on a daemon thread."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.server = None
        self.client = None
        self.loop = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)

        async def main():
            self.server = ReproServer(**self.kwargs)
            host, port = await self.server.start()
            self.client = ServeClient(f"http://{host}:{port}")
            self._ready.set()
            while not self._stopped.is_set():
                await asyncio.sleep(0.02)

        try:
            self.loop.run_until_complete(main())
        finally:
            self.loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def call(self, fn, *args, **kwargs):
        """Run a server method on the loop thread and wait for it."""
        done = threading.Event()
        out = {}

        def invoke():
            out["value"] = fn(*args, **kwargs)
            done.set()

        self.loop.call_soon_threadsafe(invoke)
        assert done.wait(10)
        return out["value"]

    def shutdown(self, **kwargs):
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(**kwargs), self.loop
        )
        fut.result(timeout=60)

    def __exit__(self, *exc):
        if not self._stopped.is_set():
            try:
                self.shutdown(drain=False, drain_timeout=2)
            except Exception:
                pass
        self._stopped.set()
        self._thread.join(timeout=10)
        return False


@pytest.fixture()
def harness(tmp_path):
    store = ResultStore(tmp_path / "cache", track_stats=True)
    with ServerHarness(
        state_dir=tmp_path / "state", store=store, workers=0
    ) as h:
        h.store = store
        yield h


def _direct_payload(benchmark, **options):
    """What ``repro-atpg`` computes for the same submission — the
    identity reference.  Comparison is modulo the two fields that are
    not content: ``cpu_seconds`` (wall clock) and ``telemetry`` (the
    direct run inherits the *server's* ambient metrics registry when it
    executes in the harness process; a served payload never carries
    it)."""
    circuit = load_benchmark(benchmark)
    result = Flow.default().run(circuit, AtpgOptions(**options))
    return _comparable(result.to_json_dict())


def _comparable(payload):
    doc = dict(payload)
    doc.pop("cpu_seconds", None)
    doc.pop("telemetry", None)
    return doc


# -- the tier-1 end-to-end contract -----------------------------------------


def test_e2e_submit_stream_result_matches_direct_run(harness):
    client = harness.client
    assert client.healthz()["status"] == "ok"

    record = client.submit(benchmark="dff", seed=1)
    assert record["state"] in ("queued", "running")

    events = list(client.events(record["id"]))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "StageStarted"
    assert "StageFinished" in kinds
    assert "FaultClassified" in kinds
    assert kinds[-1] == "JobResolved"
    assert events[-1]["state"] == "done"
    # Replay semantics: reconnecting from any offset yields the tail.
    tail = list(client.events(record["id"], start=len(events) - 2))
    assert [e["event"] for e in tail] == kinds[-2:]

    final = client.job(record["id"])
    assert final["state"] == "done"
    payload = client.result(final["key"])
    assert "telemetry" not in payload
    assert _comparable(payload) == _direct_payload("dff", seed=1)


def test_e2e_warm_resubmission_executes_nothing(harness):
    client = harness.client
    first = client.wait(client.submit(benchmark="dff", seed=2)["id"])
    assert first["state"] == "done"
    executed_before = client.healthz()["executed_total"]

    again = client.submit(benchmark="dff", seed=2)
    assert again["state"] == "cached"  # answered at submit time
    assert again["key"] == first["key"]
    assert client.healthz()["executed_total"] == executed_before
    # The cached record still serves the identical payload and a
    # terminal event stream.
    assert client.result(again["key"]) == client.result(first["key"])
    events = list(client.events(again["id"]))
    assert events[-1]["event"] == "JobResolved"

    metrics = client.metrics_text()
    assert 'repro_serve_jobs_total{mode="cached"}' in metrics
    assert 'repro_campaign_cache_requests_total{outcome="hit"}' in metrics


def test_e2e_forked_workers_relay_live_events(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with ServerHarness(
        state_dir=tmp_path / "state", store=store, workers=1
    ) as h:
        record = h.client.submit(benchmark="chu150", seed=3)
        events = list(h.client.events(record["id"]))
        kinds = {e["event"] for e in events}
        assert {"StageStarted", "StageFinished", "JobResolved"} <= kinds
        final = h.client.job(record["id"])
        assert final["state"] == "done"
        payload = h.client.result(final["key"])
        assert "telemetry" not in payload
        assert _comparable(payload) == _direct_payload("chu150", seed=3)


def test_inline_netlist_submission_runs_and_caches(harness):
    from pathlib import Path

    import repro.benchmarks_data as bench_data

    net = Path(bench_data.__file__).parent / "net" / "fig1a.net"
    text = net.read_text(encoding="utf-8")
    record = harness.client.wait(
        harness.client.submit(netlist=text, seed=4)["id"]
    )
    assert record["state"] == "done"
    # Resubmitting the same text hits the same spooled file -> cached.
    again = harness.client.submit(netlist=text, seed=4)
    assert again["state"] == "cached"
    assert again["key"] == record["key"]


# -- QoS ---------------------------------------------------------------------


def test_queue_full_and_per_client_limits_yield_429(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with ServerHarness(
        state_dir=tmp_path / "state",
        store=store,
        workers=0,
        qos=QosPolicy(max_queue=2, per_client=1, retry_after_seconds=7),
    ) as h:
        h.call(h.server.pause)  # hold the queue so counts are exact
        h.client.submit(benchmark="dff", seed=10, client="alice")
        with pytest.raises(ServeError) as exc:
            h.client.submit(benchmark="dff", seed=11, client="alice")
        assert exc.value.status == 429
        assert "client concurrency" in exc.value.body["error"]

        h.client.submit(benchmark="dff", seed=12, client="bob")
        with pytest.raises(ServeError) as exc:
            h.client.submit(benchmark="dff", seed=13, client="carol")
        assert exc.value.status == 429
        assert "queue full" in exc.value.body["error"]
        h.call(h.server.resume)


def test_deadline_clamped_into_job_options(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with ServerHarness(
        state_dir=tmp_path / "state",
        store=store,
        workers=0,
        qos=QosPolicy(max_deadline_seconds=30.0),
    ) as h:
        record = h.client.submit(benchmark="dff", seed=5, deadline_seconds=999.0)
        final = h.client.wait(record["id"])
        verbose = h.client.job(final["id"])
        assert verbose["options"]["deadline_seconds"] == 30.0
        # The clamp happened before hashing: a direct submission *at*
        # the clamped deadline shares the cache entry.
        again = h.client.submit(benchmark="dff", seed=5, deadline_seconds=30.0)
        assert again["state"] == "cached"
        assert again["key"] == final["key"]


def test_unknown_fields_and_bad_sources_are_400(harness):
    for body in (
        {"benchmark": "dff", "bogus_field": 1},
        {"benchmark": "dff", "netlist": "x"},
        {},
        {"benchmark": "no-such-benchmark"},
        {"benchmark": "dff", "style": "baroque"},
    ):
        with pytest.raises(ServeError) as exc:
            harness.client.submit(**body)
        assert exc.value.status == 400


# -- coalescing --------------------------------------------------------------


def test_identical_inflight_submissions_coalesce(harness):
    client = harness.client
    harness.call(harness.server.pause)
    primary = client.submit(benchmark="ebergen", seed=6)
    follower = client.submit(benchmark="ebergen", seed=6)
    assert follower["primary_id"] == primary["id"]
    harness.call(harness.server.resume)

    done_primary = client.wait(primary["id"])
    done_follower = client.wait(follower["id"])
    assert done_primary["state"] == "done"
    assert done_follower["state"] == "coalesced"
    # Exactly one execution bought both answers.
    assert client.healthz()["executed_total"] == 1
    # The follower streams the primary's full event log.
    primary_events = list(client.events(primary["id"]))
    follower_events = list(client.events(follower["id"]))
    assert follower_events == primary_events


def test_client_disconnect_mid_stream_leaves_run_and_others_intact(harness):
    client = harness.client
    harness.call(harness.server.pause)
    record = client.submit(benchmark="ebergen", seed=7)

    # Subscriber 1 connects, reads the response head, then hangs up
    # before any events exist.
    url = f"{client.base_url}/jobs/{record['id']}/events"
    early = urllib.request.urlopen(url, timeout=10)
    early.fp.read(0)
    early.close()  # disconnect mid-stream

    harness.call(harness.server.resume)
    # Subscriber 2 still receives the complete stream.
    events = list(client.events(record["id"]))
    assert events[-1]["event"] == "JobResolved"
    assert events[-1]["state"] == "done"
    assert client.wait(record["id"])["state"] == "done"


# -- lifecycle ---------------------------------------------------------------


def test_cancel_queued_job_and_409_for_done(harness):
    client = harness.client
    harness.call(harness.server.pause)
    record = client.submit(benchmark="dff", seed=8)
    cancelled = client.cancel(record["id"])
    assert cancelled["state"] == "cancelled"
    harness.call(harness.server.resume)
    with pytest.raises(ServeError) as exc:
        client.cancel(record["id"])
    assert exc.value.status == 409
    events = list(client.events(record["id"]))
    assert events[-1]["event"] == "JobResolved"


def test_graceful_shutdown_persists_queue_and_restart_restores(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with ServerHarness(
        state_dir=tmp_path / "state", store=store, workers=0
    ) as h:
        h.call(h.server.pause)
        a = h.client.submit(benchmark="dff", seed=20)
        b = h.client.submit(benchmark="chu150", seed=20)
        # Draining servers refuse new work with 503 but still answer
        # status queries.
        h.call(h.server.begin_drain)
        with pytest.raises(ServeError) as exc:
            h.client.submit(benchmark="dff", seed=21)
        assert exc.value.status == 503
        assert h.client.healthz()["status"] == "draining"
        h.shutdown(drain=True, drain_timeout=5)

    queue_file = tmp_path / "state" / "queue.json"
    persisted = json.loads(queue_file.read_text())
    assert {j["id"] for j in persisted["jobs"]} == {a["id"], b["id"]}

    with ServerHarness(
        state_dir=tmp_path / "state", store=store, workers=0
    ) as h2:
        restored = h2.client.jobs()
        assert {j["id"] for j in restored} == {a["id"], b["id"]}
        for job in restored:
            assert h2.client.wait(job["id"])["state"] == "done"
        assert not queue_file.exists()  # consumed on restore


def test_http_surface_basics(harness):
    client = harness.client
    # 404s: unknown route, unknown job, unknown result key.
    for path in ("/nope", "/jobs/j999999", "/results/" + "0" * 64):
        with pytest.raises(ServeError) as exc:
            client._request("GET", path)
        assert exc.value.status == 404
    # 405 names the allowed methods.
    with pytest.raises(ServeError) as exc:
        client._request("DELETE", "/jobs")
    assert exc.value.status == 405
    # Request metrics count by route and status.
    text = client.metrics_text()
    assert 'repro_serve_requests_total{route="/jobs",code="404"}' in text


def test_campaign_submission_expands_to_batch(harness):
    client = harness.client
    doc = client.submit(
        campaign={"benchmarks": ["dff", "chu150"], "seeds": [0, 1]}
    )
    assert len(doc["jobs"]) == 8  # 2 benchmarks x 2 seeds x 2 fault models
    for job in doc["jobs"]:
        final = client.wait(job["id"])
        assert final["state"] in ("done", "cached", "coalesced")
