.model fz15
.inputs s0 c0x1 c0x2
.outputs c0w
.internal s1
.graph
p0 s0+
s0+ s1+
s1+ pc0
pc0 c0x1+
c0x1+ c0w+/1
c0w+/1 c0x1-
c0x1- pj1
pc0 c0x2+
c0x2+ c0w+/2
c0w+/2 c0x2-
c0x2- pj1
pj1 s0-
s0- c0w-
c0w- s1-
s1- p0
.marking { p0 }
.initial s0=0 s1=0 c0w=0 c0x1=0 c0x2=0
.end
