.model fz5
.inputs s0 s2
.outputs s1
.graph
p0 s0+
s0+ s1+
s1+ s2+
s2+ s0-
s0- s1-
s1- s2-
s2- p0
.marking { p0 }
.initial s0=0 s1=0 s2=0
.end
