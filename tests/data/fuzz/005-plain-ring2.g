.model fz9
.inputs s0
.outputs s1
.graph
p0 s0+
s0+ s1+
s1+ s0-
s0- s1-
s1- p0
.marking { p0 }
.initial s0=0 s1=0
.end
