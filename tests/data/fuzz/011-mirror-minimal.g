.model fz0
.inputs s0
.outputs s1
.graph
p0 s0+
s0+ s1+
s1+ pm0
pm0 s0-/1
s0-/1 pj1
pm0 s0-/2
s0-/2 pj1
pj1 s1-
s1- p0
.marking { p0 }
.initial s0=0 s1=0
.end
