.model fz10
.inputs s0
.outputs s1
.internal s2 s3
.graph
p0 s0+
s0+ s1+
s1+ s2+
s2+ s3+
s3+ s0-
s0- s1-
s3+ s2-
s1- s3-
s2- s3-
s3- p0
.marking { p0 }
.initial s0=0 s1=0 s2=0 s3=0
.end
