.model fz3
.inputs s0 s1 s2 c0r0_0 c0x0 c0x2
.outputs s3
.internal c0w
.graph
p0 s0+
s0+ s1+
s1+ s2+
s2+ s3+
s3+ pc0
pc0 c0x0+
c0x0+ c0r0_0+
c0r0_0+ c0w+/1
c0w+/1 c0x0-
c0x0- c0r0_0-
c0r0_0- pj1
pc0 c0x2+
c0x2+ c0w+/2
c0w+/2 c0x2-
c0x2- pj1
pj1 s0-
s0- c0w-
c0w- s1-
s1- s2-
s2- s3-
s3- p0
.marking { p0 }
.initial s0=0 s1=0 s2=0 s3=0 c0r0_0=0 c0w=0 c0x0=0 c0x2=0
.end
