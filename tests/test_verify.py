"""The independent test-set auditor."""

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import input_fault_universe
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.core.sequences import Test
from repro.core.verify import audit_result, verify_test_set
from repro.sgraph.cssg import build_cssg


def test_audit_confirms_engine_claims(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=5)).run()
    report = audit_result(result)
    engine_detected = {
        f for f in result.faults if result.statuses[f].status == "detected"
    }
    # The auditor uses ternary replay, which can only under-approve the
    # engine's exact-semantics detections — never invent new ones beyond
    # what the engine's own tests established.
    assert report.detected <= engine_detected
    # Random-TPG and fault-sim detections were themselves established by
    # ternary replay, so the auditor must confirm at least those.
    assert report.n_detected >= result.n_random + result.n_fault_sim
    assert report.all_tests_valid
    assert "verified" in report.summary()


def test_audit_flags_invalid_vectors(celem):
    cssg = build_cssg(celem)
    faults = input_fault_universe(celem)
    # Pattern 0b01 from reset is valid; re-applying the same pattern is
    # not an edge (inputs unchanged) -> invalid test.
    bogus = Test((0b01, 0b01), [], source="handmade")
    report = verify_test_set(cssg, [bogus], faults)
    assert report.invalid_tests == [0]
    assert not report.all_tests_valid


def test_per_test_attribution(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=5)).run()
    report = audit_result(result)
    assert len(report.per_test) == len(result.tests.tests)
    assert set().union(*report.per_test) == report.detected if report.per_test else True


def test_verify_against_other_universe():
    circuit = load_benchmark("ebergen", "complex")
    result = AtpgEngine(circuit, AtpgOptions(fault_model="input", seed=5)).run()
    output_faults = __import__(
        "repro.circuit.faults", fromlist=["output_fault_universe"]
    ).output_fault_universe(circuit)
    report = audit_result(result, output_faults)
    # Input-model tests exercise the circuit thoroughly enough to catch
    # every output stuck-at as well (the input model subsumes it).
    assert report.coverage == 1.0


def test_empty_test_set(celem):
    cssg = build_cssg(celem)
    report = verify_test_set(cssg, [], input_fault_universe(celem))
    assert report.n_detected == 0
    assert report.coverage == 0.0
