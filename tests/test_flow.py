"""The staged flow API: parity, budgets, events, composition."""

import io
import json
import warnings

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.circuit.faults import fault_universe
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.flow import (
    Budget,
    BudgetExhausted,
    EventBus,
    FaultClassified,
    Flow,
    Heartbeat,
    ProgressLine,
    ProgressTick,
    RandomTpgStage,
    StageFinished,
    StageStarted,
    TestAdded,
    ThreePhaseStage,
    TraceWriter,
    REASON_BUDGET,
    REASON_UNPROCESSED,
)


def strip_cpu(payload):
    clean = dict(payload)
    clean.pop("cpu_seconds")
    return clean


def engine_result(circuit, options):
    """Run the deprecated facade with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return AtpgEngine(circuit, options).run()


# -- engine-vs-flow parity ---------------------------------------------------


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_flow_matches_legacy_engine_on_table1(name):
    """Acceptance: identical payloads (modulo cpu_seconds) on every
    Table-1 benchmark."""
    circuit = load_benchmark(name, "complex")
    options = AtpgOptions(seed=0)
    via_flow = Flow.default().run(circuit, options)
    via_engine = engine_result(circuit, options)
    assert strip_cpu(via_flow.to_json_dict()) == strip_cpu(
        via_engine.to_json_dict()
    )


def test_flow_matches_engine_with_collapse_and_output_model():
    circuit = load_benchmark("converta", "complex")
    options = AtpgOptions(fault_model="output", seed=5, collapse=True)
    assert strip_cpu(Flow.default().run(circuit, options).to_json_dict()) == (
        strip_cpu(engine_result(circuit, options).to_json_dict())
    )


def test_engine_facade_warns_deprecation(celem):
    with pytest.warns(DeprecationWarning, match="AtpgEngine is deprecated"):
        AtpgEngine(celem)


# -- budgets -----------------------------------------------------------------


def test_deadline_yields_valid_partial_result():
    """Acceptance: a 0.05 s deadline on the largest benchmark returns a
    valid partial result, untried remainder aborted with reason
    'budget'."""
    circuit = load_benchmark("vbe6a", "two-level")  # ~0.5 s unbounded
    options = AtpgOptions(seed=0, deadline_seconds=0.05)
    result = Flow.default().run(circuit, options)
    # Complete ledger and consistent accounting despite the cut-off.
    assert set(result.statuses) == set(result.faults)
    assert (
        result.n_covered + result.n_undetectable + result.n_aborted
        == result.n_total
    )
    budget_aborts = [
        s for s in result.statuses.values() if s.reason == REASON_BUDGET
    ]
    assert budget_aborts, "0.05s must not be enough for vbe6a/two-level"
    assert all(s.status == "aborted" for s in budget_aborts)
    # The partial result serializes like any other.
    back = type(result).from_json_dict(result.to_json_dict(), circuit)
    assert strip_cpu(back.to_json_dict()) == strip_cpu(result.to_json_dict())


def test_expired_budget_aborts_everything_deterministically(celem):
    """A pre-expired (fake clock) budget classifies the whole universe
    aborted/'budget' without running any generation."""
    clock = iter(float(i) for i in range(10_000))
    budget = Budget(deadline_seconds=0.0, clock=lambda: next(clock))
    result = Flow.default().run(celem, AtpgOptions(seed=1), budget=budget)
    assert result.n_aborted == result.n_total > 0
    assert result.abort_reasons() == {REASON_BUDGET: result.n_total}
    assert len(result.tests.tests) == 0


def test_budget_remaining_and_expiry():
    times = iter([0.0, 1.0, 2.0, 5.0])
    budget = Budget(deadline_seconds=4.0, clock=lambda: next(times)).start()
    assert budget.remaining() == 3.0  # at t=1
    assert not budget.expired()  # at t=2
    assert budget.expired()  # at t=5
    unbounded = Budget().start()
    assert unbounded.remaining() is None and not unbounded.expired()


def test_product_state_cap_reports_reason():
    circuit = load_benchmark("vbe6a", "two-level")
    options = AtpgOptions(seed=0, max_product_states=1, use_random_tpg=False)
    result = Flow.default().run(circuit, options)
    assert result.n_aborted > 0
    assert set(result.abort_reasons()) == {"product-states"}


# -- event stream ------------------------------------------------------------


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)


def run_with_recorder(circuit, options):
    recorder = Recorder()
    result = Flow.default().run(circuit, options, listeners=[recorder])
    return result, recorder.events


def sanitize(events):
    """Event stream minus the wall-clock field."""
    docs = []
    for event in events:
        doc = event.to_json_dict()
        doc.pop("seconds", None)
        docs.append(doc)
    return docs


def test_event_stream_is_deterministic_given_seed():
    circuit = load_benchmark("ebergen", "complex")
    options = AtpgOptions(seed=7)
    _, first = run_with_recorder(circuit, options)
    _, second = run_with_recorder(circuit, options)
    assert sanitize(first) == sanitize(second)
    assert len(first) > 10


def test_event_stream_shape(celem):
    result, events = run_with_recorder(celem, AtpgOptions(seed=1))
    # Stages bracket correctly: one StageFinished per StageStarted,
    # in order, starting with the cssg pseudo-stage.
    starts = [e.stage for e in events if isinstance(e, StageStarted)]
    ends = [e.stage for e in events if isinstance(e, StageFinished)]
    assert starts == ends
    assert starts[0] == "cssg"
    assert "three-phase" in starts
    # Every fault classified exactly once; every test announced.
    classified = [e for e in events if isinstance(e, FaultClassified)]
    assert len(classified) == result.n_total
    assert {e.fault for e in classified} == set(result.faults)
    added = [e for e in events if isinstance(e, TestAdded)]
    assert len(added) == len(result.tests.tests)
    assert [e.index for e in added] == list(range(len(added)))
    # n_faults is final at emit time (fault-sim credit counted in).
    assert [e.n_faults for e in added] == [
        len(t.faults) for t in result.tests.tests
    ]
    assert any(isinstance(e, ProgressTick) for e in events)


def test_budget_exhausted_event_emitted():
    circuit = load_benchmark("vbe6a", "two-level")
    recorder = Recorder()
    Flow.default().run(
        circuit,
        AtpgOptions(seed=0, deadline_seconds=0.05),
        listeners=[recorder],
    )
    exhausted = [e for e in recorder.events if isinstance(e, BudgetExhausted)]
    assert len(exhausted) == 1
    assert exhausted[0].reason == "deadline"
    assert exhausted[0].n_remaining > 0


def test_event_bus_subscribe_unsubscribe():
    bus = EventBus()
    seen = []
    listener = bus.subscribe(seen.append)
    bus.emit(StageStarted("x", 1))
    bus.unsubscribe(listener)
    bus.emit(StageStarted("y", 1))
    assert [e.stage for e in seen] == ["x"]
    assert bus.n_emitted == 2


def test_event_bus_unsubscribe_is_idempotent():
    bus = EventBus()
    listener = bus.subscribe(lambda e: None)
    assert bus.unsubscribe(listener) is True
    assert bus.unsubscribe(listener) is False  # no ValueError, no-op


def test_event_bus_subscribe_from_listener_takes_effect_next_emit():
    bus = EventBus()
    late = []

    def attach_once(event):
        bus.unsubscribe(attach_once)
        bus.subscribe(late.append)

    bus.subscribe(attach_once)
    bus.emit(StageStarted("first", 1))
    assert late == []  # attached mid-emit: not called for this event
    bus.emit(StageStarted("second", 1))
    assert [e.stage for e in late] == ["second"]


def test_event_bus_detach_other_listener_mid_emit():
    bus = EventBus()
    seen_a, seen_b = [], []

    def detach_b(event):
        bus.unsubscribe(listener_b)

    bus.subscribe(detach_b)
    bus.subscribe(seen_a.append)
    listener_b = bus.subscribe(seen_b.append)
    bus.emit(StageStarted("x", 1))
    # The detached listener is skipped even though it was in the
    # snapshot; the untouched listener still gets the event.
    assert [e.stage for e in seen_a] == ["x"]
    assert seen_b == []


def test_event_bus_cross_thread_detach_does_not_disturb_others():
    import threading

    bus = EventBus()
    survivor = []
    victims = [bus.subscribe(lambda e: None) for _ in range(8)]
    bus.subscribe(survivor.append)
    stop = threading.Event()

    def emitter():
        while not stop.is_set():
            bus.emit(StageStarted("spin", 1))

    thread = threading.Thread(target=emitter)
    thread.start()
    try:
        # A serving front end detaching disconnected clients while the
        # flow thread keeps emitting.
        for victim in victims:
            bus.unsubscribe(victim)
    finally:
        stop.set()
        thread.join()
    n_before = len(survivor)
    bus.emit(StageStarted("after", 1))
    assert len(survivor) == n_before + 1  # survivor never detached


def test_event_bus_raising_listener_dropped_without_disturbing_run(celem):
    import warnings

    # A listener that dies mid-run (the serving analog: a client whose
    # connection broke) is unsubscribed after one warning; the run
    # completes and the steady listener sees the full stream.
    steady = []
    flaky_seen = []

    def flaky(event):
        flaky_seen.append(event)
        if len(flaky_seen) == 3:
            raise ConnectionResetError("client went away")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = Flow.default().run(
            celem, AtpgOptions(seed=1), listeners=[steady.append, flaky]
        )
    assert result.coverage == 1.0
    assert len(flaky_seen) == 3  # dropped right after it raised
    assert len(steady) > 3  # everyone else got the whole stream
    assert any(
        issubclass(w.category, RuntimeWarning) for w in caught
    )


# -- consumers ---------------------------------------------------------------


def test_trace_writer_emits_replayable_jsonl(celem, tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(str(path)) as trace:
        Flow.default().run(celem, AtpgOptions(seed=1), listeners=[trace])
    lines = path.read_text().strip().splitlines()
    docs = [json.loads(line) for line in lines]
    assert [d["seq"] for d in docs] == list(range(len(docs)))
    assert docs[0]["event"] == "StageStarted" and docs[0]["stage"] == "cssg"
    assert {"FaultClassified", "TestAdded", "StageFinished"} <= {
        d["event"] for d in docs
    }
    assert all("t" in d for d in docs)


def test_progress_line_renders_and_closes(celem):
    stream = io.StringIO()
    with ProgressLine(stream) as progress:
        Flow.default().run(celem, AtpgOptions(seed=1), listeners=[progress])
    text = stream.getvalue()
    assert "covered=" in text and "tests=" in text
    assert text.endswith("\n")


def test_heartbeat_throttles():
    beats = []
    heart = Heartbeat(lambda: beats.append(1), min_interval=3600.0)
    for _ in range(50):
        heart(StageStarted("x", 1))
    assert len(beats) == 1  # first fires, the rest are throttled


# -- composition -------------------------------------------------------------


def test_custom_stage_list_three_phase_only(celem):
    result = Flow([ThreePhaseStage()]).run(celem, AtpgOptions(seed=1))
    assert result.n_random == 0
    assert result.coverage == 1.0


def test_empty_flow_marks_universe_unprocessed(celem):
    result = Flow([]).run(celem, AtpgOptions(seed=1))
    assert result.n_aborted == result.n_total
    assert result.abort_reasons() == {REASON_UNPROCESSED: result.n_total}


def test_user_defined_stage_participates(celem):
    class StampStage:
        name = "stamp"

        def enabled(self, ctx):
            return True

        def run(self, ctx):
            ctx.stage_stats[self.name] = {"saw_faults": len(ctx.work_list)}

    stamp = StampStage()
    recorder = Recorder()
    flow = Flow([stamp, RandomTpgStage(), ThreePhaseStage()])
    assert flow.stage_names == ["stamp", "random-tpg", "three-phase"]
    result = flow.run(celem, AtpgOptions(seed=1), listeners=[recorder])
    assert result.coverage == 1.0
    assert any(
        isinstance(e, StageStarted) and e.stage == "stamp"
        for e in recorder.events
    )


def test_default_stage_names_match_pipeline():
    from repro.flow import DEFAULT_STAGE_NAMES

    assert tuple(Flow.default().stage_names) == DEFAULT_STAGE_NAMES


# -- compaction stage --------------------------------------------------------


@pytest.mark.parametrize("collapse", [False, True])
def test_compaction_keeps_coverage_and_valid_references(collapse):
    circuit = load_benchmark("master-read", "complex")
    options = AtpgOptions(seed=2, random_walks=12, walk_len=24)
    plain = Flow.default().run(circuit, options)
    compacted = Flow.default().run(
        circuit,
        AtpgOptions(
            seed=2, random_walks=12, walk_len=24, compact=True, collapse=collapse
        ),
    )
    assert compacted.n_covered == plain.n_covered
    assert len(compacted.tests.tests) <= len(plain.tests.tests)
    for fault, status in compacted.statuses.items():
        if status.status == "detected":
            assert status.test_index is not None
            assert fault in compacted.tests.tests[status.test_index].faults


def test_compaction_skipped_when_budget_expired(celem):
    clock = iter([0.0] + [10.0] * 10_000)
    budget = Budget(deadline_seconds=5.0, clock=lambda: next(clock))
    result = Flow.default().run(
        celem, AtpgOptions(seed=1, compact=True), budget=budget
    )
    assert result.n_aborted == result.n_total  # nothing ran, nothing compacted


# -- context invariants ------------------------------------------------------


def test_fault_subset_and_shared_cssg(celem):
    from repro.sgraph.cssg import build_cssg

    cssg = build_cssg(celem)
    faults = fault_universe(celem, "input")[:4]
    result = Flow.default().run(
        celem, AtpgOptions(seed=1), faults=faults, cssg=cssg
    )
    assert result.n_total == 4
    assert result.cssg is cssg
