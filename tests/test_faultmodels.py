"""The fault-model registry: edge cases, new universes, differentials.

Covers the registry contract (unknown names raise :class:`ReproError`
listing the registered models), the two new workloads (bridging,
transition) against their materialized-netlist semantics, collapse
behaviour, serialization at the bumped schema version, and the campaign
axis wiring.
"""

import random

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import Fault, fault_universe, materialize_fault
from repro.circuit.parser import parse_netlist
from repro.core.atpg import RESULT_SCHEMA_VERSION, AtpgOptions, AtpgResult
from repro.core.collapse import collapse_faults
from repro.errors import ReproError, SimulationError
from repro.faultmodels import (
    BRIDGING,
    SLOW_TO_FALL,
    SLOW_TO_RISE,
    TRANSITION,
    WIRED_AND,
    WIRED_OR,
    FaultModel,
    adjacent_pairs,
    get_model,
    model_for_kind,
    model_names,
    register_model,
)
from repro.flow import Flow
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary
from repro.sim.batch import FaultBatch

#: A fanout-free buffer/inverter chain: no gate has two inputs, so no
#: two nets are structurally adjacent — the bridging universe is empty.
CHAIN_NET = """
.model chain
.inputs A
.gate a BUF A
.gate b INV a
.gate y BUF b
.outputs y
.reset A=0 a=0 b=1 y=1
"""


@pytest.fixture
def chain():
    return parse_netlist(CHAIN_NET)


# -- registry contract -------------------------------------------------------


def test_model_names_lists_all_four():
    assert model_names() == ["bridging", "input", "output", "transition"]


def test_get_model_unknown_raises_repro_error_with_list():
    with pytest.raises(ReproError, match="registered models.*bridging.*transition"):
        get_model("stuck-open")


def test_model_for_kind_unknown_raises():
    with pytest.raises(ReproError, match="unknown fault kind"):
        model_for_kind("stuck-open")


def test_register_duplicate_name_rejected():
    class Dup(FaultModel):
        name = "bridging"
        kinds = ("bridging2",)

    with pytest.raises(ReproError, match="already registered"):
        register_model(Dup())


def test_register_duplicate_kind_rejected():
    class Dup(FaultModel):
        name = "bridging2"
        kinds = ("bridging",)

    with pytest.raises(ReproError, match="kind 'bridging' already registered"):
        register_model(Dup())


def test_register_unregister_round_trip():
    from repro.faultmodels import unregister_model

    class Demo(FaultModel):
        name = "demo-model"
        kinds = ("demo-kind",)
        universe_label = "demo"

    register_model(Demo())
    assert "demo-model" in model_names()
    unregister_model("demo-model")
    assert "demo-model" not in model_names()
    with pytest.raises(ReproError):
        model_for_kind("demo-kind")


def test_fault_universe_dispatches_all_models(celem):
    for name in model_names():
        faults = fault_universe(celem, name)
        assert all(model_for_kind(f.kind) is get_model(name) for f in faults)


def test_engine_rejects_unknown_kind(celem):
    from repro.sim.engine import SimEngine

    with pytest.raises(SimulationError, match="unknown fault kind"):
        SimEngine(celem, [Fault("stuck-open", 2, 2, 0)], 1)


# -- bridging universe -------------------------------------------------------


def test_bridging_universe_empty_on_fanout_free_chain(chain):
    """Single-input gates never bring two nets together: the pruned
    universe is empty, and the flow still returns a complete (vacuously
    100%-covered) result."""
    assert adjacent_pairs(chain) == []
    assert fault_universe(chain, "bridging") == []
    result = Flow.default().run(chain, AtpgOptions(fault_model="bridging"))
    assert result.n_total == 0
    assert result.coverage == 1.0


def test_bridging_pairs_exclude_primary_inputs(celem):
    """Input wires are tester-driven; only gate-output nets pair up."""
    n_inputs = celem.n_inputs
    for a, b in adjacent_pairs(celem):
        assert a >= n_inputs and b >= n_inputs and a < b


def test_bridging_universe_shape(celem):
    # celem: gate c reads (a, b, c) -> pairs {a,b}, {a,c}, {b,c}.
    faults = fault_universe(celem, "bridging")
    assert len(faults) == 6  # 3 pairs x {wired-AND, wired-OR}
    a, b, c = celem.index("a"), celem.index("b"), celem.index("c")
    assert Fault("bridging", a, b, WIRED_AND) in faults
    assert Fault("bridging", b, c, WIRED_OR) in faults
    assert Fault("bridging", a, b, WIRED_AND).describe(celem) == "a~b wired-AND"
    assert Fault("bridging", a, c, WIRED_OR).describe(celem) == "a~c wired-OR"


def test_transition_universe_two_per_gate(celem):
    faults = fault_universe(celem, "transition")
    assert len(faults) == 2 * celem.n_gates
    c = celem.index("c")
    assert Fault("transition", c, c, SLOW_TO_RISE).describe(celem) == "c STR"
    assert Fault("transition", c, c, SLOW_TO_FALL).describe(celem) == "c STF"


# -- faulty semantics: overlay vs materialized netlist ----------------------


@pytest.mark.parametrize("bench", ["dff", "chu150", "mmu"])
@pytest.mark.parametrize("model", ["bridging", "transition"])
def test_overlay_matches_materialized_netlist_on_walks(bench, model):
    """The engine's packed overlay and the materialized faulty netlist
    are two encodings of the same faulty machine: scalar ternary
    settling must agree on every cycle of a random valid walk."""
    circuit = load_benchmark(bench, "complex")
    cssg = build_cssg(circuit)
    faults = fault_universe(circuit, model)
    assert faults, (bench, model)
    rng = random.Random(7)
    for fault in faults:
        mat = materialize_fault(circuit, fault)
        via_overlay = ternary.settle_from_reset(circuit, cssg.reset, fault)
        via_netlist = ternary.settle_from_reset(mat, mat.require_reset())
        assert via_overlay == via_netlist, fault.describe(circuit)
        good = cssg.reset
        for _ in range(8):
            choices = sorted(cssg.valid_patterns(good))
            if not choices:
                break
            pattern = rng.choice(choices)
            good = cssg.edges[good][pattern]
            via_overlay = ternary.apply_pattern(circuit, via_overlay, pattern, fault)
            via_netlist = ternary.apply_pattern(mat, via_netlist, pattern)
            assert via_overlay == via_netlist, fault.describe(circuit)


@pytest.mark.parametrize("bench", ["dff", "converta"])
def test_packed_batch_matches_scalar_for_mixed_universe(bench):
    """One packed word carrying bridging + transition + stuck-at machines
    must equal the per-fault scalar engines bit for bit."""
    circuit = load_benchmark(bench, "complex")
    cssg = build_cssg(circuit)
    faults = (
        fault_universe(circuit, "bridging")
        + fault_universe(circuit, "transition")
        + fault_universe(circuit, "input")[:4]
    )
    batch = FaultBatch(circuit, faults)
    state = batch.reset_and_settle(cssg.reset)
    scalars = [
        ternary.settle_from_reset(circuit, cssg.reset, f) for f in faults
    ]
    rng = random.Random(3)
    good = cssg.reset
    for _ in range(10):
        for j, fault in enumerate(faults):
            assert batch.machine_state(state, j) == scalars[j], (
                fault.describe(circuit)
            )
        choices = sorted(cssg.valid_patterns(good))
        if not choices:
            break
        pattern = rng.choice(choices)
        good = cssg.edges[good][pattern]
        state = batch.apply_settled(state, pattern)
        scalars = [
            ternary.apply_pattern_settled(circuit, s, pattern, f)
            for s, f in zip(scalars, faults)
        ]


def test_transition_sticky_semantics_on_buffer_chain(chain):
    """STR on the mid-chain inverter: reset has b=1, so b may fall but
    never rise again — after A goes 1 (b wants 0) and back to 0 (b wants
    1), the faulty machine holds b=0 while the good machine recovers."""
    b = chain.index("b")
    str_fault = Fault("transition", b, b, SLOW_TO_RISE)
    state = ternary.settle_from_reset(chain, chain.require_reset(), str_fault)
    assert ternary.to_binary(state) >> b & 1 == 1  # starts at reset value
    state = ternary.apply_pattern(chain, state, 1, str_fault)  # A=1: b falls
    assert ternary.to_binary(state) >> b & 1 == 0
    state = ternary.apply_pattern(chain, state, 0, str_fault)  # A=0: rise lost
    assert ternary.to_binary(state) >> b & 1 == 0  # sticky low


def test_bridging_wired_and_semantics(celem):
    """Wired-AND of the two buffered inputs: driving A=1,B=0 pulls both
    nets to 0 on the bridged machine."""
    a, b = celem.index("a"), celem.index("b")
    fault = Fault("bridging", a, b, WIRED_AND)
    state = ternary.settle_from_reset(celem, celem.require_reset(), fault)
    state = ternary.apply_pattern(celem, state, 0b01, fault)  # A=1 B=0
    packed = ternary.to_binary(state)
    assert (packed >> a) & 1 == 0 and (packed >> b) & 1 == 0
    # The good machine drives a=1 b=0.
    good = ternary.apply_pattern(
        celem, ternary.settle_from_reset(celem, celem.require_reset()), 0b01
    )
    gp = ternary.to_binary(good)
    assert (gp >> a) & 1 == 1 and (gp >> b) & 1 == 0


# -- collapsing --------------------------------------------------------------


def test_transition_collapse_is_identity_partition():
    """Same-gate STR/STF can never be functionally equal (F∧s ≡ F∨s has
    no solution over the other inputs), so transition collapse must be
    the identity — merging distinct transition faults would be unsound."""
    circuit = load_benchmark("converta", "complex")
    faults = fault_universe(circuit, "transition")
    reps, rep_of = collapse_faults(circuit, faults)
    assert reps == faults
    assert all(rep_of[f] is f for f in faults)


def test_bridging_collapse_is_identity_partition(celem):
    faults = fault_universe(celem, "bridging")
    reps, rep_of = collapse_faults(celem, faults)
    assert reps == faults


def test_transition_never_collapses_with_stuckat(celem):
    """Mixed lists: a sticky table must not alias a stuck-at signature
    even when the raw truth tables could coincide."""
    c = celem.index("c")
    mixed = [
        Fault("transition", c, c, SLOW_TO_RISE),
        Fault("output", c, c, 0),
        Fault("transition", c, c, SLOW_TO_FALL),
        Fault("output", c, c, 1),
    ]
    reps, _ = collapse_faults(celem, mixed)
    assert reps == mixed  # four distinct classes


def test_stuckat_cross_kind_collapse_still_works(celem):
    """The registry refactor must preserve the classic input-SA0 ≡
    output-SA0 merge on AND-like gates (here: the C-element is not
    AND-like, so use an explicit AND netlist)."""
    circuit = parse_netlist(
        ".model t\n.inputs A B\n.gate a BUF A\n.gate b BUF B\n"
        ".gate y AND2 a b\n.outputs y\n.reset A=0 B=0 a=0 b=0 y=0\n"
    )
    y, a = circuit.index("y"), circuit.index("a")
    faults = [Fault("input", y, a, 0), Fault("output", y, y, 0)]
    reps, rep_of = collapse_faults(circuit, faults)
    assert len(reps) == 1 and rep_of[faults[1]] is faults[0]


# -- serialization at schema v4 ---------------------------------------------


def test_fault_json_round_trip_new_kinds():
    for fault in (
        Fault("bridging", 3, 5, WIRED_AND),
        Fault("bridging", 3, 5, WIRED_OR),
        Fault("transition", 4, 4, SLOW_TO_RISE),
        Fault("transition", 4, 4, SLOW_TO_FALL),
    ):
        assert Fault.from_json(fault.to_json()) == fault


@pytest.mark.parametrize("model", ["bridging", "transition"])
def test_result_round_trip_new_kinds(model):
    """A full AtpgResult over a new universe survives the JSON contract
    at the bumped schema version — the campaign cache's storage format."""
    circuit = load_benchmark("dff", "complex")
    result = Flow.default().run(circuit, AtpgOptions(fault_model=model, seed=2))
    data = result.to_json_dict()
    assert data["schema_version"] == RESULT_SCHEMA_VERSION == 5
    assert all(f[0] == model for f in data["faults"])
    back = AtpgResult.from_json_dict(data, circuit)
    clean = dict(data)
    clean.pop("cpu_seconds")
    again = back.to_json_dict()
    again.pop("cpu_seconds")
    assert again == clean


# -- campaign axis -----------------------------------------------------------


def test_campaign_expands_new_models_with_distinct_keys():
    from repro.campaign import CampaignSpec, expand

    spec = CampaignSpec(
        benchmarks=["dff"],
        fault_models=("input", "output", "bridging", "transition"),
    )
    jobs = expand(spec)
    assert len(jobs) == 4
    assert len({j.key for j in jobs}) == 4
    assert {j.fault_model for j in jobs} == {
        "input", "output", "bridging", "transition",
    }


def test_campaign_rejects_unknown_model_before_running():
    from repro.campaign import CampaignSpec, expand

    spec = CampaignSpec(benchmarks=["dff"], fault_models=("input", "bogus"))
    with pytest.raises(ReproError, match="unknown fault model 'bogus'"):
        expand(spec)


def test_campaign_rows_carry_models_column():
    from repro.campaign import CampaignSpec, expand, run_campaign, rows_from_outcomes

    spec = CampaignSpec(
        benchmarks=["dff"],
        fault_models=("output", "input", "bridging", "transition"),
        options=AtpgOptions(random_walks=1, walk_len=4),
    )
    report = run_campaign(expand(spec), workers=0, store=None)
    assert report.all_ok
    (row,) = rows_from_outcomes(report.outcomes)
    assert row.in_tot > 0 and row.out_tot > 0
    assert "bridging:" in row.models and "transition:" in row.models


# -- three-phase / undetectability hooks -------------------------------------


def test_transition_activation_states_prefer_launching_edges():
    """Activation targets must have an outgoing CSSG edge completing the
    slow transition whenever any such state is justifiable."""
    circuit = load_benchmark("chu150", "complex")
    cssg = build_cssg(circuit)
    dist, _ = cssg.bfs_tree()
    for fault in fault_universe(circuit, "transition"):
        targets = TRANSITION.activation_states(cssg, dist, fault)
        site, dest = fault.site, fault.value
        # Every target is armed (pre-transition value).
        assert all(((s >> site) & 1) != dest for s in targets)
        launching = [
            s
            for s in targets
            if any(
                ((t >> site) & 1) == dest
                for t in cssg.edges.get(s, {}).values()
            )
        ]
        if launching:  # when launch states exist, *only* those are kept
            assert launching == targets


def test_never_excited_verdicts_agree_with_full_atpg():
    """Soundness spot check: any bridging/transition fault the symbolic
    never-excited proof classifies undetectable must also be classified
    undetectable (never detected) by the exhaustive flow."""
    from repro.ext.undetectable import NEVER_EXCITED, classify_undetectable

    circuit = load_benchmark("converta", "complex")
    cssg = build_cssg(circuit)
    for model in ("bridging", "transition"):
        faults = fault_universe(circuit, model)
        classes = classify_undetectable(cssg, faults)
        result = Flow.default().run(
            circuit, AtpgOptions(fault_model=model, seed=0), cssg=cssg
        )
        for fault in faults:
            if classes[fault].verdict == NEVER_EXCITED:
                assert result.statuses[fault].status == "undetectable", (
                    model,
                    fault.describe(circuit),
                )


def test_cli_runs_new_models_and_rejects_unknown(capsys):
    from repro.cli import main

    assert main(["dff", "--model", "bridging"]) == 0
    assert main(["dff", "--model", "transition"]) == 0
    assert main(["dff", "--model", "stuck-open"]) == 1
    err = capsys.readouterr().err
    assert "unknown fault model 'stuck-open'" in err
    assert "registered models" in err


def test_bridging_excites_requires_disagreement(celem):
    a, b = celem.index("a"), celem.index("b")
    fault = Fault("bridging", a, b, WIRED_AND)
    agree = 0  # a=0 b=0
    disagree = 1 << a
    assert not BRIDGING.excites(celem, fault, agree)
    assert BRIDGING.excites(celem, fault, disagree)
