"""Ternary simulation: Algorithms A and B, fault injection, detection."""

import pytest

from repro.circuit.faults import Fault
from repro.errors import SimulationError
from repro.sim import ternary


def test_from_binary_and_back(celem):
    n = celem.n_signals
    state = celem.state_of({"A": 1, "B": 0, "a": 1, "b": 0, "c": 0})
    ts = ternary.from_binary(state, n)
    assert ternary.is_definite(ts)
    assert ternary.to_binary(ts) == state
    assert ternary.phi_signals(ts) == 0


def test_to_binary_rejects_phi():
    with pytest.raises(SimulationError):
        ternary.to_binary((0b11, 0b11))


def test_settle_stable_state_is_identity(celem):
    reset = celem.require_reset()
    ts = ternary.settle(celem, ternary.from_binary(reset, celem.n_signals))
    assert ternary.to_binary(ts) == reset


def test_confluent_vector_settles_definite(celem):
    reset = celem.require_reset()
    ts = ternary.apply_pattern(celem, ternary.from_binary(reset, celem.n_signals), 0b11)
    assert ternary.is_definite(ts)
    settled = ternary.to_binary(ts)
    assert celem.is_stable(settled)
    assert celem.value(settled, "c") == 1


def test_racy_vector_goes_phi(race):
    # Figure 1(a): AB = 10 from the A=0,B=1 stable state is non-confluent.
    reset = race.require_reset()
    ts = ternary.apply_pattern(race, ternary.from_binary(reset, race.n_signals), 0b01)
    assert not ternary.is_definite(ts)
    assert ternary.phi_signals(ts) & (1 << race.index("y"))


def test_oscillation_goes_phi(oscillator):
    reset = oscillator.require_reset()
    ts = ternary.apply_pattern(
        oscillator, ternary.from_binary(reset, oscillator.n_signals), 1
    )
    phi = ternary.phi_signals(ts)
    assert phi & (1 << oscillator.index("c"))
    assert phi & (1 << oscillator.index("d"))


def test_input_pin_fault_is_local(celem):
    """An input stuck-at affects only the faulted gate's view."""
    # c's pin from a stuck at 1: c behaves as if a were high.
    c, a = celem.index("c"), celem.index("a")
    fault = Fault("input", c, a, 1)
    reset = celem.require_reset()
    # Raise only B; with the pin fault the C-element sees a=b=1 and fires.
    ts = ternary.apply_pattern(
        celem, ternary.settle_from_reset(celem, reset, fault), 0b10, fault
    )
    assert ternary.is_definite(ts)
    settled = ternary.to_binary(ts)
    assert celem.value(settled, "c") == 1
    assert celem.value(settled, "a") == 0  # the real wire is untouched


def test_output_fault_forces_node(celem):
    fault = Fault("output", celem.index("c"), celem.index("c"), 1)
    ts = ternary.settle_from_reset(celem, celem.require_reset(), fault)
    assert ternary.is_definite(ts)
    assert ternary.to_binary(ts) & (1 << celem.index("c"))


def test_output_fault_presets_site_before_settling(celem):
    """The stuck node never held the fault-free reset value, so no
    spurious phi may leak from its 'transition' (regression test for the
    reset-forcing semantics)."""
    fault = Fault("output", celem.index("a"), celem.index("a"), 1)
    ts = ternary.settle_from_reset(celem, celem.require_reset(), fault)
    assert ternary.is_definite(ts)


def test_detects_requires_definite_difference(celem):
    good = celem.state_of({"A": 0, "B": 0, "a": 0, "b": 0, "c": 0})
    n = celem.n_signals
    c = celem.index("c")
    definitely_one = (0, 1 << c)
    uncertain = (1 << c, 1 << c)
    assert ternary.detects(celem, good, definitely_one)
    assert not ternary.detects(celem, good, uncertain)
    assert not ternary.detects(celem, good, ternary.from_binary(good, n))


def test_inputs_held_by_settle(celem):
    state = celem.apply_input_pattern(celem.require_reset(), 0b11)
    ts = ternary.settle(celem, ternary.from_binary(state, celem.n_signals))
    settled = ternary.to_binary(ts)
    assert celem.input_pattern(settled) == 0b11
