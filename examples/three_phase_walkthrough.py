#!/usr/bin/env python3
"""Anatomy of one deterministic test (paper §5.1–5.3, figures 3 and 4).

Picks a fault, then walks the three phases explicitly:

1. *activation* — stable states exciting the fault,
2. *justification* — shortest valid vector sequence reaching one, with
   the faulty machine simulated alongside (corruption may show early,
   figure 3),
3. *differentiation* — shortest suffix making an output definitely
   differ (figure 4's "detected in all terminal stable states").

Run:  python examples/three_phase_walkthrough.py
"""

from repro import build_cssg, load_benchmark
from repro.circuit.faults import input_fault_universe
from repro.core.three_phase import ThreePhaseGenerator
from repro.sim import ternary


def main() -> None:
    circuit = load_benchmark("sbuf-send-ctl", style="complex")
    cssg = build_cssg(circuit)
    generator = ThreePhaseGenerator(cssg)

    # Pick the first fault that needs real work (not caught at reset).
    fault = None
    for candidate in input_fault_universe(circuit):
        faulty0 = ternary.settle_from_reset(circuit, cssg.reset, candidate)
        if not ternary.detects(circuit, cssg.reset, faulty0):
            fault = candidate
            break
    assert fault is not None
    print(f"target fault: {fault.describe(circuit)}\n")

    activations = generator.activation_states(fault)
    print(f"phase 1 — activation: {len(activations)} stable states excite "
          "the fault; nearest first:")
    for state in activations[:4]:
        print(f"  {circuit.format_state(state)}")

    outcome = generator.generate(fault)
    print(f"\nphase 2+3 outcome: {outcome.status}")
    print(f"  justification length : {outcome.justification_len}")
    print(f"  differentiation length: {outcome.differentiation_len}")
    print(f"  detected during justification: "
          f"{outcome.detected_during_justification}")

    if outcome.detected:
        print("\nreplaying the generated test:")
        good = cssg.reset
        faulty = ternary.settle_from_reset(circuit, cssg.reset, fault)
        m = circuit.n_inputs
        for i, pattern in enumerate(outcome.patterns):
            good = cssg.edges[good][pattern]
            faulty = ternary.apply_pattern(circuit, faulty, pattern, fault)
            bits = "".join(str((pattern >> j) & 1) for j in range(m))
            hit = ternary.detects(circuit, good, faulty)
            print(f"  cycle {i}: apply {bits}  good={circuit.state_bits(good)}"
                  f"  detected={hit}")


if __name__ == "__main__":
    main()
