#!/usr/bin/env python3
"""Rescuing an untestable circuit with partial scan (paper §6/§7).

The redundant two-level implementations (Table 2) leave many input
stuck-at faults untestable.  The paper points at partial scan as the
remedy; this script ranks internal signals by undetected-fault adjacency,
cuts the best candidates into scan inputs, and reruns ATPG.

Run:  python examples/partial_scan.py [benchmark-name]
"""

import sys

from repro import AtpgOptions, Flow, load_benchmark
from repro.ext import insert_scan_inputs, rank_scan_candidates


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vbe6a"
    circuit = load_benchmark(name, style="two-level")
    options = AtpgOptions(fault_model="input", seed=3)
    base = Flow.default().run(circuit, options)
    print(f"without scan: {base.summary()}")
    undetected = base.undetected_faults()
    if not undetected:
        print("nothing to rescue — already fully covered")
        return

    ranking = rank_scan_candidates(circuit, undetected)
    print("\nscan candidates (signal, undetected-fault adjacency):")
    for signal, score in ranking[:6]:
        print(f"  {signal:12} {score}")

    for n_cuts in (1, 2, 3):
        chosen = [signal for signal, _ in ranking[:n_cuts]]
        if len(chosen) < n_cuts:
            break
        scanned = insert_scan_inputs(circuit, chosen)
        result = Flow.default().run(scanned, options)
        print(f"\nscan {{{', '.join(chosen)}}}: "
              f"{result.n_covered}/{result.n_total} "
              f"({100.0 * result.coverage:.1f}%) — CSSG grew to "
              f"{result.cssg.n_states} states")
        if result.coverage == 1.0:
            break


if __name__ == "__main__":
    main()
