#!/usr/bin/env python3
"""Full front-to-back flow: STG specification -> circuit -> test set.

Starts from a textual Signal Transition Graph (the same input Petrify
takes), checks its semantic health (safeness, consistency, CSC), then
synthesizes *two* gate-level implementations — speed-independent complex
gates and redundant hazard-aware two-level logic — and compares their
testability under the paper's flow.

Run:  python examples/stg_to_tests.py
"""

from repro import (
    AtpgOptions,
    Flow,
    build_state_graph,
    check_csc,
    parse_stg,
    synthesize,
)

SPEC = """
.model demo-latch-controller
.inputs req prdy
.outputs wadr wen
.internal x
.graph
req+ x-
x- wadr+
wadr+ prdy+
prdy+ wen+
wen+ req-
req- wadr-
wadr- prdy-
prdy- x+
x+ wen-
wen- req+
.marking { <wen-,req+> }
.end
"""


def main() -> None:
    stg = parse_stg(SPEC)
    sg = build_state_graph(stg)
    print(f"STG {stg.name!r}: {len(stg.signals)} signals, "
          f"{len(stg.transitions)} transitions, "
          f"{sg.n_states} reachable states, "
          f"CSC conflicts: {len(check_csc(sg))}")

    for style in ("complex", "two-level"):
        circuit = synthesize(stg, style=style, sg=sg)
        print(f"\n--- {style} implementation: {circuit.n_gates} gates ---")
        for gate in circuit.gates:
            print(f"  {gate.name:12} = {gate.expr}")
        for model in ("output", "input"):
            result = Flow.default().run(
                circuit, AtpgOptions(fault_model=model, seed=2)
            )
            print(f"  {model:6}-stuck-at: {result.n_covered}/{result.n_total} "
                  f"({100.0 * result.coverage:.1f}%) in "
                  f"{result.tests.n_vectors} vectors")


if __name__ == "__main__":
    main()
