#!/usr/bin/env python3
"""Quickstart: run the full DAC'97 ATPG flow on one benchmark.

Builds the synchronous abstraction (CSSG) of a speed-independent
asynchronous controller, generates tests with random TPG + 3-phase ATPG
+ fault simulation, and prints the resulting test set.

Run:  python examples/quickstart.py [benchmark-name]
"""

import sys

from repro import AtpgOptions, Flow, load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "master-read"
    circuit = load_benchmark(name, style="complex")
    print(f"circuit: {circuit}")
    print(f"  inputs : {', '.join(circuit.input_names)}")
    print(f"  outputs: {', '.join(circuit.output_names)}")

    result = Flow.default().run(circuit, AtpgOptions(fault_model="input", seed=1))

    print(f"\nCSSG: {result.cssg.n_states} stable states, "
          f"{result.cssg.n_edges} valid vectors "
          f"(k = {result.cssg.k} transitions per test cycle)")
    stats = result.cssg.stats
    print(f"  vectors pruned: {stats.n_nonconfluent} non-confluent, "
          f"{stats.n_oscillating} oscillating, {stats.n_too_slow} too slow")

    print(f"\n{result.summary()}\n")
    for i, test in enumerate(result.tests):
        patterns = " ".join(test.format_patterns(circuit)) or "(observe reset)"
        covers = ", ".join(f.describe(circuit) for f in test.faults)
        print(f"test {i:2} [{test.source:7}] {patterns:<30} covers: {covers}")
    undetected = result.undetected_faults()
    if undetected:
        print("\nundetected faults (proven untestable in this abstraction):")
        for fault in undetected:
            print(f"  {fault.describe(circuit)}")


if __name__ == "__main__":
    main()
