"""Reproduce the paper's Table 1 through the campaign layer.

The pre-campaign way was a hand-rolled loop: synthesize each benchmark,
run both fault models, accumulate rows.  The campaign API replaces that
with a declarative spec — the cross product of benchmarks x fault models
(x seeds x k if desired) — a sharded run over all CPU cores, and a
content-addressed result cache: rerun this script and every job is a
cache hit, so the table prints near-instantly.

The random-TPG budget (one walk of one vector) is the calibration the
table benchmarks use to land the rnd / 3-ph / sim split in the paper's
regime; see benchmarks/conftest.py.
"""

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    expand,
    rows_from_outcomes,
    run_campaign,
)
from repro.core.report import format_table


def main() -> None:
    spec = CampaignSpec.table1(seeds=(11,), random_walks=1, walk_len=1)
    jobs = expand(spec)
    store = ResultStore()  # ~/.cache/repro, or $REPRO_CACHE_DIR

    report = run_campaign(jobs, store=store)
    print(format_table(rows_from_outcomes(report.outcomes),
                       title="Table-1: speed-independent (campaign)"))
    print()
    print(report.summary())
    if report.n_cached:
        print(f"({report.n_cached} jobs came from the cache at {store.root})")
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"FAILED {outcome.job.name}: {outcome.error}")


if __name__ == "__main__":
    main()
