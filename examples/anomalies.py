#!/usr/bin/env python3
"""Why synchronous testers cannot naively drive asynchronous circuits.

Reproduces the paper's figure 1 phenomena on the bundled reconstruction
netlists:

* fig1a — *non-confluence*: applying AB=10 from a stable state settles to
  two different states depending on which input buffer wins the race;
* fig1b — *oscillation*: raising A makes two gates chase each other
  forever.

Both vectors are exactly what the CSSG prunes; the script shows the
exhaustive settling analysis and the (conservative) ternary verdict
agreeing on the diagnosis.

Run:  python examples/anomalies.py
"""

from repro import load_figure_circuit, settle_report
from repro.sim import ternary


def show(name: str, pattern: int, pattern_text: str) -> None:
    circuit = load_figure_circuit(name)
    reset = circuit.require_reset()
    print(f"=== {name}: apply {pattern_text} from {circuit.format_state(reset)}")
    started = circuit.apply_input_pattern(reset, pattern)
    report = settle_report(circuit, started)
    if report.nonconfluent:
        print(f"  exhaustive analysis: NON-CONFLUENT — "
              f"{len(report.stable_states)} possible settling states:")
        for state in sorted(report.stable_states):
            print(f"    {circuit.format_state(state)}")
    elif report.oscillating:
        print("  exhaustive analysis: OSCILLATION — the settling graph has a "
              f"cycle ({report.n_states} states explored)")
    else:
        print(f"  exhaustive analysis: confluent, settles in <= "
              f"{report.longest_path} transitions")
    result = ternary.apply_pattern(
        circuit, ternary.settle_from_reset(circuit, reset), pattern
    )
    if ternary.is_definite(result):
        print("  ternary simulation: definite (vector safe)")
    else:
        phi = [circuit.signal_name(i)
               for i in range(circuit.n_signals)
               if (ternary.phi_signals(result) >> i) & 1]
        print(f"  ternary simulation: uncertain on {{{', '.join(phi)}}} "
              "(vector rejected)")
    print()


def main() -> None:
    # fig1a inputs are (A, B); pattern bit0 = A, bit1 = B.
    show("fig1a", 0b01, "AB = 10")
    show("fig1b", 0b1, "A+")


if __name__ == "__main__":
    main()
