#!/usr/bin/env python3
"""Lint an STG specification, then independently audit a test set.

Two library features a production user leans on:

* :func:`repro.stg.analyse_stg` — semantic lint of a specification
  (free-choice, environment-resolved choices, output persistency, dead
  signals, CSC) before synthesis is attempted;
* :func:`repro.core.audit_result` — an independent replay of every
  generated test against the full fault universe, confirming exactly
  which detections a synchronous tester is *guaranteed* to observe.

Run:  python examples/spec_lint_and_audit.py
"""

from repro import AtpgOptions, Flow, load_benchmark, parse_stg
from repro.core.verify import audit_result
from repro.stg.analysis import analyse_stg

BROKEN_SPEC = """
.model broken
.inputs a
.outputs y z
.graph
p0 a+
a+ pc
pc y+
pc z+
y+ a-/1
a-/1 y-
y- p0
z+ a-/2
a-/2 z-
z- p0
.marking { p0 }
.end
"""


def main() -> None:
    print("=== linting a deliberately broken specification ===")
    report = analyse_stg(parse_stg(BROKEN_SPEC))
    print(report.summary())
    print("(the choice between y+ and z+ is the circuit's to make —")
    print(" no deterministic speed-independent implementation exists)\n")

    print("=== linting the bundled benchmarks ===")
    for name in ("mmu", "nowick", "master-read"):
        from repro import load_benchmark_stg

        print(analyse_stg(load_benchmark_stg(name)).summary())

    print("\n=== auditing an ATPG run ===")
    circuit = load_benchmark("mmu", style="complex")
    result = Flow.default().run(circuit, AtpgOptions(fault_model="input", seed=6))
    print(result.summary())
    audit = audit_result(result)
    print(audit.summary())
    confirmed = len(audit.detected)
    claimed = result.n_covered
    print(f"auditor confirms {confirmed}/{claimed} claimed detections "
          "(exact-semantics detections beyond ternary replay are expected)")


if __name__ == "__main__":
    main()
