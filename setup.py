"""Packaging for the DAC'97 synchronous-ATPG reproduction.

Kept as a plain ``setup.py`` so ``pip install -e . --no-use-pep517``
works offline (the sandbox has setuptools but not the ``wheel``
package).  The bundled benchmark corpus (``benchmarks_data/stg/*.g``
STGs and ``benchmarks_data/net/*.net`` figure netlists) ships as
package data, and the CLI documented in :mod:`repro.cli` installs as
the ``repro-atpg`` console script.
"""

from setuptools import find_packages, setup

setup(
    name="repro-atpg",
    version="1.0.0",
    description=(
        "Synchronous test pattern generation for asynchronous circuits "
        "(Roig, Cortadella, Peña, Pastor — DAC 1997)"
    ),
    python_requires=">=3.8",
    # numpy backs the slab fault-simulation kernel (repro.sim.arena);
    # the import site raises a pointed ImportError if it's absent.
    install_requires=["numpy"],
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={
        "repro.benchmarks_data": ["stg/*.g", "net/*.net"],
    },
    include_package_data=True,
    entry_points={
        "console_scripts": [
            "repro-atpg = repro.cli:main",
            "repro-campaign = repro.cli:campaign_main",
            "repro-serve = repro.serve.server:serve_main",
            "repro-cache = repro.cli:cache_main",
            "repro-fuzz = repro.cli:fuzz_main",
        ],
    },
)
